// Tests of the paper's Section 2 algorithm: correctness on many graph
// families, the per-vertex radius law, engine-variant agreement, and the
// universe-aware refinement.
#include <gtest/gtest.h>

#include "algo/largest_id.hpp"
#include "algo/validity.hpp"
#include "graph/ball.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

class LargestIdOnCycles : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LargestIdOnCycles, CorrectAndPointwiseMinimal) {
  const auto [n, seed] = GetParam();
  support::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);
  const auto run = local::run_views(g, ids, algo::make_largest_id_view());
  EXPECT_TRUE(algo::is_valid_largest_id(ids, run.outputs));

  // Radius law on the cycle (induced semantics):
  // r(v) = min(distance to a larger identifier, ceil((n-1)/2)).
  const auto expected = algo::largest_id_radii_on_cycle(ids);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(run.radii[v], expected[v]) << "vertex " << v << " n " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LargestIdOnCycles,
                         ::testing::Combine(::testing::Values(3, 4, 5, 8, 16, 33, 64, 129),
                                            ::testing::Values(1, 2, 3)));

TEST(LargestId, RadiusFormulaMatchesBruteForce) {
  support::Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.below(40);
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto fast = algo::largest_id_radii_on_cycle(ids);
    const std::size_t cover = n / 2;
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t expected = cover;
      for (std::size_t d = 1; d < cover; ++d) {
        if (ids.id_of(static_cast<graph::Vertex>((v + d) % n)) > ids.id_of(v) ||
            ids.id_of(static_cast<graph::Vertex>((v + n - d) % n)) > ids.id_of(v)) {
          expected = d;
          break;
        }
      }
      EXPECT_EQ(fast[v], expected) << "n " << n << " v " << v;
    }
  }
}

TEST(LargestId, WorstCaseRadiusIsClosureForMaxVertex) {
  const std::size_t n = 12;
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  const auto run = local::run_views(g, ids, algo::make_largest_id_view());
  EXPECT_EQ(run.radii[ids.argmax()], n / 2);
  EXPECT_EQ(run.outputs[ids.argmax()], algo::kYes);
}

struct FamilyCase {
  std::string family;
  std::size_t n;
};

class LargestIdOnFamilies : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(LargestIdOnFamilies, CorrectOnGeneralGraphs) {
  const auto& param = GetParam();
  support::Xoshiro256 rng(99);
  graph::Graph g = param.family == "path"   ? graph::make_path(param.n)
                   : param.family == "tree" ? graph::make_random_tree(param.n, rng)
                   : param.family == "grid" ? graph::make_grid(param.n / 4, 4)
                   : param.family == "star" ? graph::make_star(param.n)
                   : param.family == "gnp"
                       ? graph::make_gnp_connected(param.n, 0.2, rng)
                       : graph::make_complete(param.n);
  for (int trial = 0; trial < 3; ++trial) {
    const auto ids = graph::IdAssignment::random(g.vertex_count(), rng);
    const auto run = local::run_views(g, ids, algo::make_largest_id_view());
    EXPECT_TRUE(algo::is_valid_largest_id(ids, run.outputs))
        << param.family << " trial " << trial;
    // The maximum vertex pays at least its eccentricity... its radius is
    // exactly the closure radius of its ball, bounded below by ecc.
    const auto leader = ids.argmax();
    EXPECT_GE(run.radii[leader],
              static_cast<std::size_t>(graph::eccentricity(g, leader)));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, LargestIdOnFamilies,
                         ::testing::Values(FamilyCase{"path", 17}, FamilyCase{"tree", 25},
                                           FamilyCase{"grid", 24}, FamilyCase{"star", 9},
                                           FamilyCase{"gnp", 30},
                                           FamilyCase{"complete", 8}),
                         [](const auto& param_info) {
                           return param_info.param.family + std::to_string(param_info.param.n);
                         });

TEST(LargestId, MessageVariantMatchesFloodingViews) {
  support::Xoshiro256 rng(5);
  for (const std::size_t n : {4u, 5u, 9u, 16u, 27u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    local::ViewEngineOptions options;
    options.semantics = local::ViewSemantics::kFloodingKnowledge;
    const auto views = local::run_views(g, ids, algo::make_largest_id_view(), options);
    const auto messages = local::run_messages(g, ids, algo::make_largest_id_messages());
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(messages.outputs[v], views.outputs[v]) << "n " << n << " v " << v;
      EXPECT_EQ(messages.radii[v], views.radii[v]) << "n " << n << " v " << v;
    }
  }
}

TEST(LargestId, SemanticsDifferByAtMostOne) {
  support::Xoshiro256 rng(6);
  for (const std::size_t n : {5u, 8u, 13u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    local::ViewEngineOptions flooding;
    flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
    const auto induced = local::run_views(g, ids, algo::make_largest_id_view());
    const auto flooded = local::run_views(g, ids, algo::make_largest_id_view(), flooding);
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_LE(induced.radii[v], flooded.radii[v]);
      EXPECT_LE(flooded.radii[v] - induced.radii[v], 1u);
    }
  }
}

TEST(LargestId, UniverseAwareNeverSlower) {
  support::Xoshiro256 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.below(60);
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto paper = local::run_views(g, ids, algo::make_largest_id_view());
    const auto aware =
        local::run_views(g, ids, algo::make_largest_id_universe_aware_view());
    EXPECT_TRUE(algo::is_valid_largest_id(ids, aware.outputs));
    std::uint64_t saved = 0;
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_LE(aware.radii[v], paper.radii[v]) << "v " << v;
      saved += paper.radii[v] - aware.radii[v];
    }
    // The vertex with identifier 1 always stops at radius 0 under the
    // universe-aware rule (every completion contains a larger identifier).
    for (std::size_t v = 0; v < n; ++v) {
      if (ids.id_of(static_cast<graph::Vertex>(v)) == 1) {
        EXPECT_EQ(aware.radii[v], 0u);
      }
    }
    (void)saved;
  }
}

TEST(LargestId, TreeRadiusLaw) {
  // On any graph, under induced semantics, r(v) = min(distance to a larger
  // identifier, eccentricity of v) - the ball covers the graph exactly at
  // ecc(v). Validated on random trees and paths.
  support::Xoshiro256 rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 8 + rng.below(40);
    const graph::Graph g = trial % 2 == 0 ? graph::make_random_tree(n, rng)
                                          : graph::make_path(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto run = local::run_views(g, ids, algo::make_largest_id_view());
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto dist = graph::bfs_distances(g, v);
      std::size_t expected = static_cast<std::size_t>(graph::eccentricity(g, v));
      for (graph::Vertex u = 0; u < n; ++u) {
        if (ids.id_of(u) > ids.id_of(v)) {
          expected = std::min(expected, static_cast<std::size_t>(dist[u]));
        }
      }
      EXPECT_EQ(run.radii[v], expected) << "trial " << trial << " v " << v;
    }
  }
}

TEST(LargestId, RadiusSumHelperAgrees) {
  support::Xoshiro256 rng(8);
  const auto ids = graph::IdAssignment::random(41, rng);
  const auto radii = algo::largest_id_radii_on_cycle(ids);
  std::uint64_t sum = 0;
  for (auto r : radii) sum += r;
  EXPECT_EQ(algo::largest_id_radius_sum_on_cycle(ids), sum);
}

TEST(Validity, CheckersCatchBadOutputs) {
  const auto ids = graph::IdAssignment::identity(5);
  const auto g = graph::make_cycle(5);
  std::vector<std::int64_t> two_leaders = {0, 1, 0, 0, 1};
  EXPECT_FALSE(algo::is_valid_largest_id(ids, two_leaders));
  std::vector<std::int64_t> ok = {0, 0, 0, 0, 1};
  EXPECT_TRUE(algo::is_valid_largest_id(ids, ok));

  std::vector<std::int64_t> bad_colouring = {0, 0, 1, 2, 1};
  EXPECT_FALSE(algo::is_valid_colouring(g, bad_colouring, 3));
  std::vector<std::int64_t> good_colouring = {0, 1, 0, 1, 2};
  EXPECT_TRUE(algo::is_valid_colouring(g, good_colouring, 3));
  EXPECT_FALSE(algo::is_valid_colouring(g, good_colouring, 2)) << "palette bound enforced";

  std::vector<std::int64_t> not_maximal = {0, 0, 0, 0, 0};
  EXPECT_FALSE(algo::is_maximal_independent_set(g, not_maximal));
  std::vector<std::int64_t> not_independent = {1, 1, 0, 1, 0};
  EXPECT_FALSE(algo::is_maximal_independent_set(g, not_independent));
  std::vector<std::int64_t> good_mis = {1, 0, 1, 0, 0};
  EXPECT_TRUE(algo::is_maximal_independent_set(g, good_mis));
}

}  // namespace
