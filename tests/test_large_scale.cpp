// Million-node sweep infrastructure: compact-CSR width parity, the
// memory-budgeted batching contract, and the reserve-exact id path.
//
//  - 32/64-bit offset parity: every family the large-n path cares about
//    (ring, torus, sparse gnp, random tree) produces identical topology and
//    bit-identical sweep partials - and, for the ring, a byte-identical
//    shard artefact - through the compact and wide CSR layouts.
//  - Memory budgets: SweepMemoryModel's batch-width inversion, the
//    n = 10^6 ring smoke under a declared budget (alloc-hook-metered, the
//    test fails on overshoot), and budget-vs-unlimited result equality
//    (the budget clamps footprint, never results).
//  - The sparse gnp sampler is a distribution twin of the dense pair loop.
//  - IdAssignment::random at n = 10^6: exactly one allocation, 64-byte
//    aligned (the reserve-exact contract the sweep hot loop relies on).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "algo/largest_id.hpp"
#include "core/batched_sweep.hpp"
#include "core/memory_model.hpp"
#include "core/shard.hpp"
#include "core/sweep_backend.hpp"
#include "core/sweep_driver.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "support/aligned.hpp"
#include "support/alloc_hook.hpp"
#include "support/rng.hpp"

AVGLOCAL_DEFINE_ALLOC_HOOK();

namespace {

using namespace avglocal;
using graph::GraphBuilder;

/// Replays g's arcs in per-source port order into a fresh builder, forcing
/// the requested offset width. Port order is insertion order per source, so
/// the rebuilt CSR matches g's arc-for-arc.
graph::Graph rebuild_with_width(const graph::Graph& g, GraphBuilder::OffsetWidth width) {
  GraphBuilder b(g.vertex_count());
  b.reserve_arcs(2 * g.edge_count());
  for (graph::Vertex u = 0; u < g.vertex_count(); ++u) {
    for (std::size_t p = 0; p < g.degree(u); ++p) b.add_arc(u, g.neighbour(u, p));
  }
  return b.build(width);
}

void expect_same_topology(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (graph::Vertex v = 0; v < a.vertex_count(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    for (std::size_t p = 0; p < a.degree(v); ++p) {
      ASSERT_EQ(a.neighbour(v, p), b.neighbour(v, p)) << "vertex " << v << " port " << p;
      ASSERT_EQ(a.mirror_port(v, p), b.mirror_port(v, p)) << "vertex " << v << " port " << p;
    }
  }
}

core::PointAccumulator sweep_point(const graph::Graph& g, const core::BatchedSweepOptions& opt) {
  return core::accumulate_point(g, 0, algo::make_largest_id_view(), opt, 0, opt.trials, nullptr);
}

core::BatchedSweepOptions small_sweep_options() {
  core::BatchedSweepOptions opt;
  opt.trials = 6;
  opt.seed = 77;
  return opt;
}

// ------------------------------------------------------------------------
// 32/64-bit offset-width parity.
// ------------------------------------------------------------------------

TEST(IndexWidthParity, AutoPicksCompactAndWideIsForceable) {
  const graph::Graph g = graph::make_cycle(64);
  EXPECT_TRUE(g.compact_offsets()) << "kAuto must compact: every buildable graph fits 32 bits";
  const graph::Graph wide = rebuild_with_width(g, GraphBuilder::OffsetWidth::kWide);
  EXPECT_FALSE(wide.compact_offsets());
  EXPECT_GT(wide.memory_bytes(), g.memory_bytes()) << "wide offsets cost real bytes";
}

TEST(IndexWidthParity, SweepPartialsAreBitIdenticalAcrossWidths) {
  support::Xoshiro256 rng(2024);
  const core::BatchedSweepOptions opt = small_sweep_options();
  const std::vector<graph::Graph> graphs = [] {
    support::Xoshiro256 gen(99);
    std::vector<graph::Graph> out;
    out.push_back(graph::make_cycle(256));
    out.push_back(graph::make_torus(12, 12));
    out.push_back(graph::make_gnp_connected(600, 0.02, gen, 100, graph::GnpMethod::kSparse));
    out.push_back(graph::make_random_tree(300, gen));
    return out;
  }();
  for (const graph::Graph& compact : graphs) {
    ASSERT_TRUE(compact.compact_offsets());
    const graph::Graph wide = rebuild_with_width(compact, GraphBuilder::OffsetWidth::kWide);
    ASSERT_FALSE(wide.compact_offsets());
    expect_same_topology(compact, wide);
    EXPECT_EQ(sweep_point(compact, opt), sweep_point(wide, opt))
        << "n=" << compact.vertex_count();
  }
}

TEST(IndexWidthParity, RingShardArtefactIsByteIdenticalAcrossWidths) {
  const core::BatchedSweepOptions opt = small_sweep_options();
  const graph::Graph compact = graph::make_cycle(128);
  const graph::Graph wide = rebuild_with_width(compact, GraphBuilder::OffsetWidth::kWide);

  const auto render = [&](const graph::Graph& g) {
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options({g.vertex_count()}, opt);
    doc.meta.algorithm = "largest-id";
    doc.meta.graph = "cycle";
    doc.meta.engine = "view";
    doc.shard = {0, 1, 0, opt.trials};
    doc.points.push_back(sweep_point(g, opt));
    return core::shard_to_json(doc);
  };
  EXPECT_EQ(render(compact), render(wide));
}

// ------------------------------------------------------------------------
// Memory-budgeted batching.
// ------------------------------------------------------------------------

TEST(SweepMemoryModel, MaxBatchInvertsTheAffineFootprint) {
  const core::SweepMemoryModel model{1000, 100};
  EXPECT_EQ(model.predicted_lane_bytes(4), 1000u + 400u);
  EXPECT_EQ(model.max_batch(2000, 1), 10u);   // (2000 - 1000) / 100
  EXPECT_EQ(model.max_batch(4000, 2), 10u);   // per-lane share halves
  EXPECT_EQ(model.max_batch(1000, 1), 1u);    // share <= fixed: floor, never zero
  EXPECT_EQ(model.max_batch(0, 1), 1u);
  EXPECT_EQ(model.max_batch(1050, 1), 1u);    // width rounds down to 0 -> floor 1
  EXPECT_EQ(model.max_batch(2000, 0), 10u);   // lanes clamped to >= 1
}

TEST(MemoryBudget, BudgetNeverChangesResults) {
  const graph::Graph g = graph::make_cycle(2048);
  core::BatchedSweepOptions unlimited = small_sweep_options();
  unlimited.trials = 12;
  core::BatchedSweepOptions budgeted = unlimited;
  // Tight budget: roughly two resident trials per lane.
  const core::ViewBackend backend([](std::size_t) { return algo::make_largest_id_view(); },
                                  unlimited.semantics);
  const core::SweepMemoryModel model = backend.memory_model(g);
  budgeted.memory_budget_bytes = model.predicted_lane_bytes(2);
  EXPECT_EQ(sweep_point(g, unlimited), sweep_point(g, budgeted));
}

/// Sanitizer instrumentation (TSan shadow memory, ASan redzones and
/// quarantine) inflates the resident set far past the model's envelope, so
/// physical-peak assertions only mean something in uninstrumented builds.
/// The sweeps still run under sanitizers - that is their race coverage.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Resident-memory high-water mark of this process (VmHWM), in bytes.
/// Returns 0 when /proc is unavailable (non-Linux); callers skip then.
std::size_t vm_hwm_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::stoull(line.substr(6))) * 1024;
    }
  }
  return 0;
}

TEST(MemoryBudget, MillionNodeRingStaysInsideDeclaredBudget) {
  constexpr std::size_t kMillion = 1'000'000;
  const graph::Graph g = graph::make_cycle(kMillion);
  ASSERT_TRUE(g.compact_offsets());

  core::BatchedSweepOptions opt;
  opt.trials = 8;
  opt.seed = 7;
  const core::ViewBackend backend([](std::size_t) { return algo::make_largest_id_view(); },
                                  opt.semantics);
  const core::SweepMemoryModel model = backend.memory_model(g);
  // Declared budget: two resident trials per lane. The driver must derive
  // width 2 and sweep within the envelope; a broken clamp keeps all 8
  // trials resident at once (6 * bytes_per_trial ~ 168 MB over budget on
  // this ring) and overshoots the peak-RSS gate by an order of magnitude
  // more than any allocator slack.
  opt.memory_budget_bytes = model.predicted_lane_bytes(2);

  const std::size_t hwm_before = vm_hwm_bytes();
  if (hwm_before == 0) GTEST_SKIP() << "/proc/self/status unavailable";

  core::SweepDriver driver(backend, opt, nullptr);
  core::SweepDriver::Point point = driver.prepare(g, 0);
  const core::PointAccumulator acc = driver.run_trials(point, 0, opt.trials);
  const std::size_t hwm_after = vm_hwm_bytes();

  EXPECT_EQ(acc.trial_count(), opt.trials);
  // VmHWM is monotone, so the delta is exactly the additional peak this
  // sweep caused. The graph is resident before the measurement although
  // the model's fixed part pays for it - deliberate slack on the gate's
  // safe side (the true need is budget minus the CSR bytes).
  const std::size_t overshoot_bytes = hwm_after - hwm_before;
  if (!kSanitized) {
    EXPECT_LE(overshoot_bytes, opt.memory_budget_bytes)
        << "budgeted n=10^6 sweep peaked " << overshoot_bytes - opt.memory_budget_bytes
        << " bytes past its declared budget of " << opt.memory_budget_bytes;
  }
}

TEST(MemoryBudget, ViewModelEnvelopeCoversMeasuredAllocation) {
  const graph::Graph g = graph::make_cycle(100'000);
  core::BatchedSweepOptions opt;
  opt.trials = 4;
  opt.seed = 13;
  const core::ViewBackend backend([](std::size_t) { return algo::make_largest_id_view(); },
                                  opt.semantics);
  const core::SweepMemoryModel model = backend.memory_model(g);

  core::SweepDriver driver(backend, opt, nullptr);
  core::SweepDriver::Point point = driver.prepare(g, 0);
  const support::AllocCounts before = support::alloc_counts();
  (void)driver.run_trials(point, 0, opt.trials);
  const support::AllocCounts after = support::alloc_counts();

  // The lane runs at full width (no budget set), so the whole range is ONE
  // batch and every buffer is allocated exactly once - which makes the
  // hook's cumulative byte count equal the resident need (the hook never
  // sees frees; with several batches per-batch rebuilds would double-count
  // resident bytes, which is why the budgeted gate above meters VmHWM
  // instead). prepare() costs (graph, edge list) are inside fixed_bytes but
  // pre-date the measurement - slack on the safe side; the test fails only
  // when the model genuinely undershoots reality.
  EXPECT_LE(after.bytes - before.bytes, model.predicted_lane_bytes(opt.trials))
      << "bytes-per-trial model undershoots the measured lane allocation";
}

// ------------------------------------------------------------------------
// Sparse gnp: distribution twin of the dense pair loop.
// ------------------------------------------------------------------------

TEST(SparseGnp, MatchesDenseDegreeDistributionAtSmallN) {
  constexpr std::size_t kN = 64;
  constexpr double kP = 0.15;
  constexpr int kSamples = 200;
  const auto mean_edges = [&](graph::GnpMethod method, std::uint64_t seed) {
    support::Xoshiro256 rng(seed);
    double total = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      total += static_cast<double>(
          graph::make_gnp_connected(kN, kP, rng, 100, method).edge_count());
    }
    return total / kSamples;
  };
  const double dense = mean_edges(graph::GnpMethod::kDense, 1);
  const double sparse = mean_edges(graph::GnpMethod::kSparse, 2);
  // E[m] = p * n(n-1)/2 = 302.4 (connectivity conditioning shifts it only
  // slightly at p = 0.15); per-sample sd ~ 16, so the sample means carry a
  // standard error ~ 1.1 each. A +-5 gate is ~3 sigma on the difference.
  EXPECT_NEAR(dense, sparse, 5.0);
  EXPECT_NEAR(dense, 302.4, 5.0);
}

TEST(SparseGnp, AutoRoutesSmallNToTheDensePath) {
  // kAuto at n = 64 must reproduce the dense draw order byte for byte -
  // that is what keeps the committed gnp goldens valid.
  support::Xoshiro256 a(42);
  support::Xoshiro256 b(42);
  const graph::Graph dense = graph::make_gnp_connected(64, 0.15, a, 100, graph::GnpMethod::kDense);
  const graph::Graph aut = graph::make_gnp_connected(64, 0.15, b, 100, graph::GnpMethod::kAuto);
  expect_same_topology(dense, aut);
}

// ------------------------------------------------------------------------
// Reserve-exact id assignments.
// ------------------------------------------------------------------------

TEST(IdAssignmentLargeN, RandomAllocatesOnceAndAligned) {
  constexpr std::size_t kMillion = 1'000'000;
  support::Xoshiro256 rng(5);
  const support::AllocCounts before = support::alloc_counts();
  const graph::IdAssignment ids = graph::IdAssignment::random(kMillion, rng);
  const support::AllocCounts after = support::alloc_counts();
#ifdef NDEBUG
  EXPECT_EQ(after.allocations - before.allocations, 1u)
      << "IdAssignment::random must reserve exactly (fill + in-place shuffle)";
#else
  // Debug builds assert distinctness through a sorted copy - one extra.
  EXPECT_LE(after.allocations - before.allocations, 2u);
#endif
  EXPECT_GE(after.bytes - before.bytes, kMillion * sizeof(std::uint64_t));
  EXPECT_TRUE(support::is_aligned(ids.ids().data())) << "id buffer must stay 64-byte aligned";
  EXPECT_EQ(ids.ids().size(), kMillion);
}

}  // namespace
