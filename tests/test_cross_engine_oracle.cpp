// Cross-engine oracle suite: algorithms with both a view and a message
// formulation must produce identical per-node output rounds through every
// execution path - run_message_sweep (one reused engine), run_views_batched
// (geometry replay) and the full-information gossip adapter - on rings,
// tori, gnp graphs and random trees under shared sweep seeds.
//
// This is the strongest claim the simulator makes (the paper's two
// formulations of the LOCAL model agree, at code level), and it pins the
// new message-sweep path to the measurement ground truth sample by sample,
// not just in aggregate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algo/cole_vishkin.hpp"
#include "algo/largest_id.hpp"
#include "algo/mis_ring.hpp"
#include "core/batched_sweep.hpp"
#include "core/message_sweep.hpp"
#include "core/shard.hpp"
#include "core/sweep_driver.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/full_info.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

struct NamedGraph {
  std::string name;
  graph::Graph g;
};

std::vector<NamedGraph> oracle_topologies() {
  support::Xoshiro256 rng(4242);
  std::vector<NamedGraph> out;
  out.push_back({"ring", graph::make_cycle(20)});
  out.push_back({"torus", graph::make_torus(4, 5)});
  out.push_back({"gnp", graph::make_gnp_connected(18, 0.18, rng)});
  out.push_back({"random_tree", graph::make_random_tree(19, rng)});
  return out;
}

/// The sweep's id assignment for (seed, point, trial) - the single seed
/// derivation every engine path shares.
graph::IdAssignment sweep_ids(std::uint64_t seed, std::size_t point, std::size_t trial,
                              std::size_t n) {
  support::Xoshiro256 rng(support::derive_seed(support::derive_seed(seed, point), trial));
  return graph::IdAssignment::random(n, rng);
}

// The message formulation of largest-id is the full-information adapter on
// general graphs (the hand-rolled token flooding below is ring-only); its
// rounds equal the flooding-knowledge view radii.
TEST(CrossEngineOracle, MessageSweepEqualsBatchedViewsAndAdapterEverywhere) {
  constexpr std::uint64_t kSeed = 606;
  constexpr std::size_t kTrials = 4;

  for (const auto& [name, g] : oracle_topologies()) {
    const std::size_t n = g.vertex_count();

    core::BatchedSweepOptions options;
    options.trials = kTrials;
    options.seed = kSeed;
    options.semantics = local::ViewSemantics::kFloodingKnowledge;

    // Path 1: the message sweep over the gossip adapter (one reused
    // engine for all trials).
    const core::PointAccumulator message_acc = core::accumulate_message_point(
        g, /*point_index=*/0, local::make_full_info_factory(algo::make_largest_id_view()), {},
        options, 0, kTrials);

    // Path 2: the batched view engine under the same options.
    const core::PointAccumulator view_acc =
        core::accumulate_point(g, /*point_index=*/0, algo::make_largest_id_view(), options, 0,
                               kTrials, /*pool=*/nullptr);

    // Identical per-node output rounds make the entire exact-integer
    // accumulators equal - per-trial sums and maxima, per-node sums, node
    // and edge histograms, edge times.
    EXPECT_EQ(message_acc, view_acc) << name;

    // Path 3: the adapter run one trial at a time through run_messages
    // (fresh engine per trial), against per-vertex view-engine runs.
    for (std::size_t t = 0; t < kTrials; ++t) {
      const graph::IdAssignment ids = sweep_ids(kSeed, 0, t, n);
      const auto adapter =
          local::run_views_by_messages(g, ids, algo::make_largest_id_view());
      local::ViewEngineOptions flooding;
      flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
      const auto views = local::run_views(g, ids, algo::make_largest_id_view(), flooding);
      EXPECT_EQ(adapter.outputs, views.outputs) << name << " trial " << t;
      EXPECT_EQ(adapter.radii, views.radii) << name << " trial " << t;
    }
  }
}

// On rings the hand-rolled token-flooding formulation (largest-id-msg) is
// also available; its output rounds must match the flooding-knowledge view
// radii, closing the triangle message-algorithm = adapter = view engine.
TEST(CrossEngineOracle, RingTokenFloodingMatchesViewRadii) {
  constexpr std::uint64_t kSeed = 707;
  constexpr std::size_t kTrials = 5;
  const auto g = graph::make_cycle(23);

  core::BatchedSweepOptions options;
  options.trials = kTrials;
  options.seed = kSeed;
  options.semantics = local::ViewSemantics::kFloodingKnowledge;

  const core::PointAccumulator token_acc = core::accumulate_message_point(
      g, 0, algo::make_largest_id_messages(), {}, options, 0, kTrials);
  const core::PointAccumulator view_acc =
      core::accumulate_point(g, 0, algo::make_largest_id_view(), options, 0, kTrials, nullptr);
  EXPECT_EQ(token_acc, view_acc);

  const core::PointAccumulator adapter_acc = core::accumulate_message_point(
      g, 0, local::make_full_info_factory(algo::make_largest_id_view()), {}, options, 0,
      kTrials);
  EXPECT_EQ(token_acc, adapter_acc);
}

/// Renders one shard artefact through a directly-constructed ViewBackend,
/// so the layer_jump toggle (not exposed through scenario specs - it is an
/// execution knob, not a workload parameter) can be pinned at the artefact
/// byte level.
std::string render_view_artefact(const graph::Graph& g, const std::string& algorithm,
                                 const core::AlgorithmProvider& provider, bool layer_jump) {
  const std::vector<std::size_t> ns = {g.vertex_count()};
  core::BatchedSweepOptions options;
  options.trials = 5;
  options.seed = 2026;
  options.node_profile = true;

  const core::ViewBackend backend(provider, local::ViewSemantics::kInducedBall, layer_jump);
  const core::SweepDriver driver(backend, options, /*pool=*/nullptr);

  core::ShardDocument doc;
  doc.meta = core::SweepPlanMeta::from_options(ns, options);
  doc.meta.algorithm = algorithm;
  doc.meta.graph = "cycle";
  doc.meta.engine = "view";
  doc.shard = {0, 1, 0, options.trials};
  core::SweepDriver::Point prepared = driver.prepare(g, 0);
  doc.points.push_back(driver.run_trials(prepared, 0, options.trials));
  return core::shard_to_json(doc);
}

// The layer-jump is a pure execution optimisation: the whole serialised
// shard artefact - every radius histogram bucket, edge time and node
// profile double - must be byte-identical with the jump on and off, for
// algorithms whose min_radius schedules actually trigger multi-layer
// jumps (cv3, mis-ring) and one that never jumps (largest-id).
TEST(CrossEngineOracle, LayerJumpLeavesShardArtefactsByteIdentical) {
  const std::size_t n = 30;
  const auto g = graph::make_cycle(n);
  const std::vector<std::pair<std::string, core::AlgorithmProvider>> cases = {
      {"cv3", [](std::size_t size) { return algo::make_cole_vishkin_view(size); }},
      {"mis", [](std::size_t size) { return algo::make_mis_ring_view(size); }},
      {"largest-id", [](std::size_t) { return algo::make_largest_id_view(); }},
  };
  for (const auto& [name, provider] : cases) {
    const std::string with_jump = render_view_artefact(g, name, provider, /*layer_jump=*/true);
    const std::string without = render_view_artefact(g, name, provider, /*layer_jump=*/false);
    EXPECT_FALSE(with_jump.empty()) << name;
    EXPECT_EQ(with_jump, without) << name;
  }
}

// The parity must hold for every pool size of the view engine: the message
// sweep is serial by construction, so this pins "thread schedule never
// changes results" across engines, not just within one.
TEST(CrossEngineOracle, ParityIsThreadScheduleIndependent) {
  support::Xoshiro256 rng(99);
  const auto g = graph::make_gnp_connected(16, 0.2, rng);
  core::BatchedSweepOptions options;
  options.trials = 3;
  options.seed = 5;
  options.semantics = local::ViewSemantics::kFloodingKnowledge;

  const core::PointAccumulator message_acc = core::accumulate_message_point(
      g, 0, local::make_full_info_factory(algo::make_largest_id_view()), {}, options, 0, 3);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    const core::PointAccumulator view_acc = core::accumulate_point(
        g, 0, algo::make_largest_id_view(), options, 0, 3, &pool);
    EXPECT_EQ(message_acc, view_acc) << "threads=" << threads;
  }
}

}  // namespace
