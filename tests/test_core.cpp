// Tests of the core measurement framework and a smoke run of every
// experiment in the suite.
#include <gtest/gtest.h>

#include "algo/largest_id.hpp"
#include "core/experiments.hpp"
#include "core/measure.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(Measure, ExtractsBothMeasures) {
  local::RunResult run;
  run.radii = {0, 1, 2, 3};
  run.outputs = {0, 0, 0, 1};
  const auto m = core::measure(run);
  EXPECT_EQ(m.n, 4u);
  EXPECT_EQ(m.sum_radius, 6u);
  EXPECT_EQ(m.max_radius, 3u);
  EXPECT_DOUBLE_EQ(m.avg_radius, 1.5);
  EXPECT_DOUBLE_EQ(core::measure_gap(m), 2.0);
}

TEST(Measure, GapOfZeroRadiiIsOne) {
  local::RunResult run;
  run.radii = {0, 0};
  EXPECT_DOUBLE_EQ(core::measure_gap(core::measure(run)), 1.0);
}

TEST(Runner, AssignmentRunMatchesEngine) {
  const auto g = graph::make_cycle(32);
  const auto ids = graph::IdAssignment::reversed(32);
  const auto m = core::run_assignment(g, ids, algo::make_largest_id_view());
  EXPECT_EQ(m.n, 32u);
  EXPECT_EQ(m.max_radius, 16u);  // the max vertex must close the ball
}

TEST(Runner, SweepIsDeterministicAcrossThreadCounts) {
  core::SweepOptions serial;
  serial.trials = 10;
  serial.seed = 5;
  serial.threads = 1;
  core::SweepOptions parallel = serial;
  parallel.threads = 8;

  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const auto a =
      core::run_random_sweep({16, 32}, graphs, algo::make_largest_id_view(), serial);
  const auto b =
      core::run_random_sweep({16, 32}, graphs, algo::make_largest_id_view(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].avg_mean, b[i].avg_mean);
    EXPECT_DOUBLE_EQ(a[i].avg_sd, b[i].avg_sd);
    EXPECT_EQ(a[i].max_worst, b[i].max_worst);
  }
}

TEST(Runner, SweepInvariants) {
  core::SweepOptions options;
  options.trials = 8;
  options.seed = 9;
  const auto points = core::run_random_sweep(
      {24}, [](std::size_t n) { return graph::make_cycle(n); },
      algo::make_largest_id_view(), options);
  ASSERT_EQ(points.size(), 1u);
  const auto& p = points[0];
  EXPECT_EQ(p.n, 24u);
  EXPECT_EQ(p.trials, 8u);
  EXPECT_LE(p.avg_mean, p.avg_worst + 1e-12);
  EXPECT_LE(p.avg_worst, static_cast<double>(p.max_worst));
  EXPECT_EQ(p.max_worst, 12u) << "the leader always pays the closure radius";
}

TEST(Experiments, SmokeRunAllAtTinyScale) {
  core::ExperimentScale scale;
  scale.factor = 0.05;
  for (const auto& experiment : core::all_experiments()) {
    const auto result = experiment(scale);
    EXPECT_FALSE(result.id.empty());
    EXPECT_FALSE(result.tables.empty()) << result.id;
    const std::string rendered = core::render(result);
    EXPECT_NE(rendered.find(result.title), std::string::npos);
    // Self-checking columns render "NO" / "budget" only on failure.
    EXPECT_EQ(rendered.find(" NO "), std::string::npos) << result.id << "\n" << rendered;
  }
}

TEST(Experiments, ScaleHelper) {
  core::ExperimentScale full;
  EXPECT_EQ(full.at_least(100, 10), 100u);
  core::ExperimentScale tiny;
  tiny.factor = 0.01;
  EXPECT_EQ(tiny.at_least(100, 10), 10u);
}

}  // namespace
