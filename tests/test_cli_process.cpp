// Process-level CLI contracts, driven through the real avglocal_cli
// binary (path injected as AVGLOCAL_CLI_BIN):
//
//  * malformed numeric flags exit 2 and name the offending flag - the
//    bare-stoull era threw an uncaught exception on garbage and silently
//    wrapped "-1" to 2^64-1;
//  * the drive reaper survives shard failure: a shard that exits nonzero
//    or dies by signal on its first attempt is retried, and the merged
//    report is byte-identical to the monolithic sweep's;
//  * exhausted retries fail the drive cleanly (exit 1, "giving up"),
//    never a hang or an abort.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout and stderr, interleaved
};

RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, pipe)) > 0) {
    result.output.append(chunk, got);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string cli() { return AVGLOCAL_CLI_BIN; }

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// A scratch directory per test; paths stay under /tmp and are removed
/// best-effort (content first, via the shell, then the directory).
class ScratchDir {
 public:
  ScratchDir() {
    char dir_template[] = "/tmp/avglocal-cli-test-XXXXXX";
    if (::mkdtemp(dir_template) != nullptr) path_ = dir_template;
  }
  ~ScratchDir() {
    if (!path_.empty()) (void)run_command("rm -rf '" + path_ + "'");
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------- numeric flag parsing ----

struct BadFlagCase {
  const char* args;
  const char* flag;
  const char* value;
};

TEST(CliFlagParsing, MalformedNumericFlagsExitTwoAndNameTheFlag) {
  const BadFlagCase cases[] = {
      {"sweep --trials banana --ns 64", "--trials", "banana"},
      {"sweep --seed -1 --ns 64", "--seed", "-1"},
      {"sweep --ns 64,abc", "--ns", "64,abc"},
      {"sweep --threads 1.5 --ns 64", "--threads", "1.5"},
      {"sweep --batch 0x10 --ns 64", "--batch", "0x10"},
      {"sweep --min-trials -3 --ns 64", "--min-trials", "-3"},
      {"sweep --adaptive-batch ten --ns 64", "--adaptive-batch", "ten"},
      {"sweep --target-hw wide --ns 64", "--target-hw", "wide"},
      {"sweep --z z --ns 64", "--z", "z"},
      {"sweep --shard one/2 --out /dev/null --ns 64", "--shard", "one/2"},
      {"--n 12x", "--n", "12x"},
      {"--seed 99999999999999999999", "--seed", "99999999999999999999"},
      {"drive --shards -2 --ns 64", "--shards", "-2"},
      {"drive --jobs many --ns 64", "--jobs", "many"},
      {"drive --retries 1e3 --ns 64", "--retries", "1e3"},
      {"serve --socket /tmp/x.sock --max-clients none", "--max-clients", "none"},
      {"request --socket /tmp/x.sock --trials '' ", "--trials", ""},
      {"fabric-serve --listen unix:/tmp/x.sock --straggler-ms soon --ns 64", "--straggler-ms",
       "soon"},
      {"fabric-serve --listen unix:/tmp/x.sock --unit-trials -4 --ns 64", "--unit-trials", "-4"},
      {"fabric-worker --connect unix:/tmp/x.sock --connect-timeout-ms never",
       "--connect-timeout-ms", "never"},
  };
  for (const BadFlagCase& c : cases) {
    const RunResult result = run_command(cli() + " " + c.args);
    EXPECT_EQ(result.exit_code, 2) << c.args << "\n" << result.output;
    const std::string expected =
        "invalid value '" + std::string(c.value) + "' for " + c.flag;
    EXPECT_NE(result.output.find(expected), std::string::npos)
        << c.args << "\nexpected: " << expected << "\ngot:\n"
        << result.output;
  }
}

TEST(CliFlagParsing, WellFormedNumericFlagsStillWork) {
  const RunResult result =
      run_command(cli() + " sweep --algo largest-id --graph cycle --ns 64 --trials 4 --seed 1");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// ------------------------------------------------------ drive retry path ----

std::string drive_flags(const ScratchDir& dir, const std::string& report) {
  return " drive --algo largest-id --graph cycle --ns 64,128 --trials 10 --seed 3"
         " --shards 2 --jobs 2 --workdir '" +
         dir.path() + "/work' --json '" + report + "'";
}

std::string monolithic_reference(const ScratchDir& dir) {
  const std::string path = dir.path() + "/mono.json";
  const RunResult result = run_command(
      cli() + " sweep --algo largest-id --graph cycle --ns 64,128 --trials 10 --seed 3 --json '" +
      path + "'");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  return read_file(path);
}

TEST(CliDrive, RetriesShardThatExitsNonzeroAndMergesIdentically) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string reference = monolithic_reference(dir);

  const std::string report = dir.path() + "/drive.json";
  const RunResult result = run_command("AVGLOCAL_TEST_FAIL_MARKER='" + dir.path() + "/marker'" + " " +
                                       cli() + drive_flags(dir, report));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("retrying"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("2 attempts"), std::string::npos) << result.output;
  EXPECT_EQ(read_file(report), reference);
}

TEST(CliDrive, RetriesShardKilledBySignalAndMergesIdentically) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string reference = monolithic_reference(dir);

  const std::string report = dir.path() + "/drive.json";
  const RunResult result =
      run_command("AVGLOCAL_TEST_FAIL_MARKER='" + dir.path() + "/marker'" + " " +
                  " AVGLOCAL_TEST_FAIL_MODE=kill " + cli() + drive_flags(dir, report));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("retrying"), std::string::npos) << result.output;
  EXPECT_EQ(read_file(report), reference);
}

TEST(CliDrive, GivesUpCleanlyWhenRetriesAreExhausted) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string report = dir.path() + "/drive.json";
  const RunResult result =
      run_command("AVGLOCAL_TEST_FAIL_MARKER='" + dir.path() + "/marker'" + " " +
                  " AVGLOCAL_TEST_FAIL_MODE=always " + cli() + drive_flags(dir, report) +
                  " --retries 1");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("giving up"), std::string::npos) << result.output;
  // No report file: the drive failed before the merge.
  std::ifstream missing(report);
  EXPECT_FALSE(missing.good());
}

// ------------------------------------------------------- fabric processes ----

/// The monolithic reference report for the fabric tests' shared workload.
std::string fabric_reference(const ScratchDir& dir) {
  const std::string path = dir.path() + "/mono.json";
  const RunResult result = run_command(
      cli() + " sweep --algo largest-id --graph cycle --ns 64,128 --trials 40 --seed 5 --json '" +
      path + "'");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  return read_file(path);
}

/// Writes a shell script into the scratch dir and runs it (quoting-proof
/// for the multi-process orchestration the fabric tests need). The
/// script sees CLI, DIR and SOCK pre-set.
RunResult run_script(const ScratchDir& dir, const std::string& body) {
  const std::string path = dir.path() + "/script.sh";
  std::ofstream file(path);
  file << "CLI='" << cli() << "'\nDIR='" << dir.path() << "'\nSOCK=\"unix:$DIR/fab.sock\"\n"
       << body;
  file.close();
  return run_command("sh '" + path + "'");
}

/// fabric-serve with the shared workload (backgrounded as $serve).
const char* const kServeLine =
    "$CLI fabric-serve --listen \"$SOCK\" --algo largest-id --graph cycle --ns 64,128"
    " --trials 40 --seed 5 --unit-trials 4 --json \"$DIR/fabric.json\""
    " > \"$DIR/serve.log\" 2>&1 &\nserve=$!\n";

std::string worker_line(const std::string& name) {
  return "$CLI fabric-worker --connect \"$SOCK\" --name " + name + " --threads 1 > \"$DIR/" +
         name + ".log\" 2>&1";
}

TEST(CliFabric, ThreeWorkersMatchTheMonolithicSweepByteForByte) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string reference = fabric_reference(dir);

  // No sleeps anywhere: the workers' connect retries ride out the
  // coordinator's bind window.
  const RunResult result = run_script(dir, std::string(kServeLine) + worker_line("w1") + " &\n" +
                                               worker_line("w2") + " &\n" + worker_line("w3") +
                                               " &\nwait $serve");
  EXPECT_EQ(result.exit_code, 0) << result.output << read_file(dir.path() + "/serve.log");
  EXPECT_EQ(read_file(dir.path() + "/fabric.json"), reference);
  // How many of the three connected before the sweep ran out of units is
  // timing (a fast pair can drain it first); at least one must have.
  const std::string serve_log = read_file(dir.path() + "/serve.log");
  EXPECT_EQ(serve_log.find(" 0 worker(s)"), std::string::npos) << serve_log;
}

TEST(CliFabric, WorkerKilledMidUnitIsRedispatchedAndMergesIdentically) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string reference = fabric_reference(dir);

  // The casualty worker starts alone, so it certainly receives a grant;
  // its injected SIGKILL fires mid-unit (after the grant, before any
  // artefact). The healthy worker only starts once the marker file proves
  // the casualty was granted - from there the coordinator must release
  // the orphaned unit and re-dispatch it.
  const RunResult result = run_script(
      dir, std::string(kServeLine) +
               "AVGLOCAL_TEST_FAIL_MARKER=\"$DIR/marker\" AVGLOCAL_TEST_FAIL_MODE=kill " +
               worker_line("w1") + " &\n" +
               "until [ -e \"$DIR/marker.worker-w1\" ]; do sleep 0.05; done\n" +
               worker_line("w2") + " &\nwait $serve");
  EXPECT_EQ(result.exit_code, 0) << result.output << read_file(dir.path() + "/serve.log");
  EXPECT_EQ(read_file(dir.path() + "/fabric.json"), reference);

  const std::string serve_log = read_file(dir.path() + "/serve.log");
  EXPECT_EQ(serve_log.find(" 0 re-dispatch(es)"), std::string::npos) << serve_log;
  EXPECT_NE(serve_log.find("re-dispatch(es)"), std::string::npos) << serve_log;
}

TEST(CliFabric, SigtermDrainsCoordinatorAndWorkerCleanly) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path().empty());

  // A sweep far too large to finish: the coordinator dies by SIGTERM with
  // units still pending, the worker sees the half-closed connection as an
  // orderly drain (exit 0), never a crash.
  const RunResult result = run_script(
      dir,
      "$CLI fabric-serve --listen \"$SOCK\" --algo largest-id --graph cycle --ns 4096"
      " --trials 100000 --unit-trials 20 > \"$DIR/serve.log\" 2>&1 &\nserve=$!\n" +
          worker_line("w1") + " &\nworker=$!\n" +
          "sleep 1\nkill -TERM $serve\n"
          "wait $serve; serve_status=$?\n"
          "wait $worker; worker_status=$?\n"
          "echo serve_status=$serve_status worker_status=$worker_status\n");
  EXPECT_NE(result.output.find("serve_status=1"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("worker_status=0"), std::string::npos) << result.output;
  const std::string serve_log = read_file(dir.path() + "/serve.log");
  EXPECT_NE(serve_log.find("stopped before completion"), std::string::npos) << serve_log;
  const std::string worker_log = read_file(dir.path() + "/w1.log");
  EXPECT_NE(worker_log.find("drained by coordinator"), std::string::npos) << worker_log;
}

}  // namespace
