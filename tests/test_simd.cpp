// Pins every SIMD kernel of support/simd.hpp bit-identical to its scalar
// reference on randomized shapes, including the tile remainders (row counts
// 0..9 cover the 4-row, 2-row and scalar tails of the AVX2 path) and both
// column regimes of the layer gather (dense prefix vs scattered survivor
// indices). Also pins the 64-byte alignment contract of
// support/aligned.hpp and the bit-scan edge cases of for_each_set_bit.
//
// On hosts without a vector ISA (or with AVGLOCAL_SIMD=OFF) the dispatch
// returns the scalar kernels and these tests compare them to themselves -
// trivially green, by design: the contract is "dispatch == scalar"
// wherever the suite runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "support/aligned.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace {

using namespace avglocal;
namespace simd = support::simd;

std::vector<std::uint64_t> random_words(std::size_t count, support::Xoshiro256& rng) {
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = rng.next();
  return words;
}

TEST(Simd, ActiveIsaIsKnown) {
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "scalar") << isa;
#ifdef AVGLOCAL_SIMD_DISABLE
  EXPECT_EQ(isa, "scalar") << "forced-scalar builds must report scalar";
#endif
}

TEST(Aligned, VectorDataIsCacheLineAligned) {
  // Every capacity, including after growth: the allocator fixes alignment,
  // not luck.
  for (const std::size_t count : {1u, 7u, 64u, 1000u}) {
    support::AlignedVector<std::uint64_t> v(count);
    EXPECT_TRUE(support::is_aligned(v.data())) << "count " << count;
    v.resize(count * 3 + 1);
    EXPECT_TRUE(support::is_aligned(v.data())) << "after growth from " << count;
  }
  support::AlignedVector<std::uint32_t> u(13);
  EXPECT_TRUE(support::is_aligned(u.data()));
}

TEST(Simd, CopyWordsMatchesScalar) {
  support::Xoshiro256 rng(11);
  for (const std::size_t count : {0u, 1u, 3u, 8u, 65u, 1024u}) {
    const auto src = random_words(count, rng);
    std::vector<std::uint64_t> got(count + 1, 0xAAu), want(count + 1, 0xAAu);
    simd::copy_words(got.data(), src.data(), count);
    simd::scalar::copy_words(want.data(), src.data(), count);
    EXPECT_EQ(got, want) << "count " << count;
  }
}

TEST(Simd, GatherU64MatchesScalar) {
  support::Xoshiro256 rng(12);
  const auto src = random_words(512, rng);
  for (const std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 63u, 200u}) {
    std::vector<std::uint32_t> idx(count);
    for (auto& i : idx) i = static_cast<std::uint32_t>(rng.below(src.size()));
    std::vector<std::uint64_t> got(count, 0), want(count, 1);
    simd::gather_u64(got.data(), src.data(), idx.data(), count);
    simd::scalar::gather_u64(want.data(), src.data(), idx.data(), count);
    EXPECT_EQ(got, want) << "count " << count;
  }
}

TEST(Simd, TransposeToRowsMatchesScalar) {
  support::Xoshiro256 rng(13);
  for (const std::size_t rows : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 64u}) {
    for (const std::size_t cols : {0u, 1u, 3u, 4u, 6u, 8u, 17u}) {
      std::vector<std::vector<std::uint64_t>> columns(cols);
      std::vector<const std::uint64_t*> srcs(cols);
      for (std::size_t j = 0; j < cols; ++j) {
        columns[j] = random_words(rows, rng);
        srcs[j] = columns[j].data();
      }
      const std::size_t stride = cols + 3;  // padded stride: pad cols never read
      std::vector<std::uint64_t> got(rows * stride, 0xBBu), want(rows * stride, 0xBBu);
      simd::transpose_to_rows(got.data(), stride, srcs.data(), cols, rows);
      simd::scalar::transpose_to_rows(want.data(), stride, srcs.data(), cols, rows);
      // Compare only written cells; the pad must be untouched in both.
      EXPECT_EQ(got, want) << "rows " << rows << " cols " << cols;
    }
  }
}

TEST(Simd, LayerGatherMatchesScalarOnDenseAndScatteredColumns) {
  support::Xoshiro256 rng(14);
  constexpr std::size_t kTrials = 96;
  constexpr std::size_t kStride = 96;  // multiple of 8, as the engine pads
  constexpr std::size_t kVertices = 40;
  const auto rows = random_words(kVertices * kStride, rng);

  for (const std::size_t row_count : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 33u}) {
    for (const bool dense : {true, false}) {
      for (const std::size_t col_count : {1u, 3u, 4u, 5u, 8u, 64u, 90u}) {
        std::vector<std::uint32_t> row_index(row_count);
        for (auto& r : row_index) r = static_cast<std::uint32_t>(rng.below(kVertices));
        // Dense prefix (the in-flight list before any trial finishes) vs a
        // random ascending subset (after compaction).
        std::vector<std::uint32_t> cols(kTrials);
        std::iota(cols.begin(), cols.end(), 0u);
        if (!dense) {
          support::shuffle(cols, rng);
          cols.resize(col_count);
          std::sort(cols.begin(), cols.end());
        } else {
          cols.resize(col_count);
        }

        const std::size_t dst_begin = 5;
        const std::size_t dst_len = dst_begin + row_count;
        std::vector<std::vector<std::uint64_t>> got_bufs(col_count),
            want_bufs(col_count);
        std::vector<std::uint64_t*> got_heads(col_count), want_heads(col_count);
        for (std::size_t j = 0; j < col_count; ++j) {
          got_bufs[j].assign(dst_len, 0xCCu);
          want_bufs[j].assign(dst_len, 0xCCu);
          got_heads[j] = got_bufs[j].data();
          want_heads[j] = want_bufs[j].data();
        }
        simd::layer_gather(rows.data(), kStride, row_index.data(), row_count, cols.data(),
                           col_count, got_heads.data(), dst_begin);
        simd::scalar::layer_gather(rows.data(), kStride, row_index.data(), row_count,
                                   cols.data(), col_count, want_heads.data(), dst_begin);
        for (std::size_t j = 0; j < col_count; ++j) {
          EXPECT_EQ(got_bufs[j], want_bufs[j])
              << "rows " << row_count << " cols " << col_count << " dense " << dense
              << " buffer " << j;
        }
      }
    }
  }
}

std::vector<std::size_t> collect_bits(const std::vector<std::uint64_t>& words, std::size_t begin,
                                      std::size_t end) {
  std::vector<std::size_t> got;
  simd::for_each_set_bit(words.data(), begin, end, [&](std::size_t bit) { got.push_back(bit); });
  return got;
}

TEST(Simd, ForEachSetBitMatchesPerBitScan) {
  support::Xoshiro256 rng(15);
  const auto words = random_words(5, rng);
  const std::size_t total = words.size() * 64;
  const std::size_t ranges[][2] = {{0, 0},     {0, 1},   {0, 64},   {0, 128},  {1, 64},
                                   {63, 64},   {63, 65}, {64, 128}, {10, 250}, {100, 101},
                                   {128, 192}, {0, total}};
  for (const auto& [begin, end] : ranges) {
    std::vector<std::size_t> want;
    for (std::size_t i = begin; i < end; ++i) {
      if ((words[i >> 6] >> (i & 63)) & 1u) want.push_back(i);
    }
    EXPECT_EQ(collect_bits(words, begin, end), want) << "[" << begin << ", " << end << ")";
  }
}

TEST(Simd, ForEachSetBitOnSolidAndEmptyMasks) {
  const std::vector<std::uint64_t> solid(3, ~std::uint64_t{0});
  EXPECT_EQ(collect_bits(solid, 0, 192).size(), 192u);
  EXPECT_EQ(collect_bits(solid, 5, 67).size(), 62u);
  const std::vector<std::uint64_t> empty(3, 0);
  EXPECT_TRUE(collect_bits(empty, 0, 192).empty());
  EXPECT_TRUE(collect_bits(empty, 63, 129).empty());
}

}  // namespace
