// Unit tests for the graph library: builders, generators, balls, IO.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/ball.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "support/aligned.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal::graph;
using avglocal::support::Xoshiro256;

TEST(Builder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(Builder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Builder, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, RejectsAsymmetricArcs) {
  GraphBuilder b(3);
  b.add_arc(0, 1);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, PortOrderFollowsInsertion) {
  GraphBuilder b(4);
  b.add_arc(0, 2);
  b.add_arc(0, 1);
  b.add_arc(0, 3);
  b.add_arc(1, 0);
  b.add_arc(2, 0);
  b.add_arc(3, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.neighbour(0, 0), 2u);
  EXPECT_EQ(g.neighbour(0, 1), 1u);
  EXPECT_EQ(g.neighbour(0, 2), 3u);
  EXPECT_EQ(g.mirror_port(1, 0), 1u) << "arc 1->0 mirrors to 0's port 1";
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2)) << "absent edge";
}

TEST(Generators, CyclePortConvention) {
  const Graph g = make_cycle(7);
  EXPECT_TRUE(is_cycle(g));
  EXPECT_EQ(g.vertex_count(), 7u);
  EXPECT_EQ(g.edge_count(), 7u);
  for (Vertex v = 0; v < 7; ++v) {
    EXPECT_EQ(g.neighbour(v, 0), (v + 1) % 7) << "port 0 is the clockwise successor";
    EXPECT_EQ(g.neighbour(v, 1), (v + 6) % 7) << "port 1 is the predecessor";
  }
}

TEST(Generators, CycleRejectsTiny) { EXPECT_THROW(make_cycle(2), std::invalid_argument); }

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_TRUE(is_path(g));
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  // Interior port convention: 0 = right, 1 = left.
  EXPECT_EQ(g.neighbour(2, 0), 3u);
  EXPECT_EQ(g.neighbour(2, 1), 1u);
}

TEST(Generators, CompleteAndStar) {
  const Graph k5 = make_complete(5);
  EXPECT_EQ(k5.edge_count(), 10u);
  EXPECT_EQ(min_degree(k5), 4u);
  const Graph s6 = make_star(6);
  EXPECT_EQ(s6.degree(0), 5u);
  EXPECT_EQ(max_degree(s6), 5u);
  EXPECT_EQ(min_degree(s6), 1u);
  EXPECT_TRUE(is_tree(s6));
}

TEST(Generators, GridAndTorus) {
  const Graph grid = make_grid(3, 4);
  EXPECT_EQ(grid.vertex_count(), 12u);
  EXPECT_EQ(grid.edge_count(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(grid));
  const Graph torus = make_torus(3, 4);
  EXPECT_EQ(torus.edge_count(), 24u);
  EXPECT_EQ(min_degree(torus), 4u);
  EXPECT_EQ(max_degree(torus), 4u);
}

TEST(Generators, KaryTree) {
  const Graph t = make_kary_tree(2, 4);  // 1 + 2 + 4 + 8 = 15 vertices
  EXPECT_EQ(t.vertex_count(), 15u);
  EXPECT_TRUE(is_tree(t));
  EXPECT_EQ(t.degree(0), 2u);
}

TEST(Generators, RandomTreeIsTree) {
  Xoshiro256 rng(3);
  for (const std::size_t n : {2u, 3u, 10u, 57u, 200u}) {
    const Graph t = make_random_tree(n, rng);
    EXPECT_EQ(t.vertex_count(), n);
    EXPECT_TRUE(is_tree(t)) << "n = " << n;
  }
}

TEST(Generators, GnpConnected) {
  Xoshiro256 rng(4);
  const Graph g = make_gnp_connected(60, 0.15, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.vertex_count(), 60u);
}

TEST(Generators, RandomRegular) {
  Xoshiro256 rng(5);
  const Graph g = make_random_regular(24, 3, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(min_degree(g), 3u);
  EXPECT_EQ(max_degree(g), 3u);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);  // odd n*d
}

TEST(Ids, RejectsDuplicates) {
  EXPECT_THROW(IdAssignment({1, 2, 2}), std::invalid_argument);
  EXPECT_THROW(IdAssignment(std::vector<std::uint64_t>{}), std::invalid_argument);
}

TEST(Ids, FactoriesAndArgmax) {
  const auto ident = IdAssignment::identity(5);
  EXPECT_EQ(ident.id_of(0), 1u);
  EXPECT_EQ(ident.id_of(4), 5u);
  EXPECT_EQ(ident.argmax(), 4u);
  const auto rev = IdAssignment::reversed(5);
  EXPECT_EQ(rev.id_of(0), 5u);
  EXPECT_EQ(rev.argmax(), 0u);
  Xoshiro256 rng(6);
  const auto rnd = IdAssignment::random(100, rng);
  std::set<std::uint64_t> values(rnd.ids().begin(), rnd.ids().end());
  EXPECT_EQ(values.size(), 100u);
}

TEST(Ids, SwapProducesNewAssignment) {
  const auto base = IdAssignment::identity(4);
  const auto swapped = base.with_swapped(0, 3);
  EXPECT_EQ(swapped.id_of(0), 4u);
  EXPECT_EQ(swapped.id_of(3), 1u);
  EXPECT_EQ(base.id_of(0), 1u) << "original untouched";
}

TEST(Ids, StorageIsCacheLineAligned) {
  // The SIMD transpose and gather kernels read assignment arrays with
  // aligned wide loads; every construction path must honour the contract.
  Xoshiro256 rng(8);
  for (const std::size_t n : {1u, 5u, 64u, 257u}) {
    EXPECT_TRUE(avglocal::support::is_aligned(IdAssignment::identity(n).ids().data())) << n;
    EXPECT_TRUE(avglocal::support::is_aligned(IdAssignment::reversed(n).ids().data())) << n;
    EXPECT_TRUE(avglocal::support::is_aligned(IdAssignment::random(n, rng).ids().data())) << n;
  }
  const IdAssignment checked({7, 3, 9});  // public validating constructor
  EXPECT_TRUE(avglocal::support::is_aligned(checked.ids().data()));
  EXPECT_TRUE(avglocal::support::is_aligned(checked.with_swapped(0, 2).ids().data()));
}

TEST(Ball, DistancesOnCycle) {
  const Graph g = make_cycle(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[7], 1);
  EXPECT_EQ(dist[4], 4);
}

TEST(Ball, MaxDepthCutsOff) {
  const Graph g = make_path(10);
  const auto dist = bfs_distances(g, 0, 3);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Ball, BallVerticesOrderAndContent) {
  const Graph g = make_cycle(9);
  const auto ball = ball_vertices(g, 0, 2);
  ASSERT_EQ(ball.size(), 5u);
  EXPECT_EQ(ball[0], 0u);
  // Layer 1 in port order (successor first), then layer 2.
  EXPECT_EQ(ball[1], 1u);
  EXPECT_EQ(ball[2], 8u);
  EXPECT_EQ(ball[3], 2u);
  EXPECT_EQ(ball[4], 7u);
}

TEST(Ball, EccentricityAndDiameter) {
  EXPECT_EQ(eccentricity(make_path(10), 0), 9);
  EXPECT_EQ(eccentricity(make_path(10), 5), 5);
  EXPECT_EQ(diameter(make_cycle(10)), 5);
  EXPECT_EQ(diameter(make_cycle(11)), 5);
  EXPECT_EQ(diameter(make_complete(7)), 1);
}

TEST(Ball, DistanceBetweenVertices) {
  const Graph g = make_grid(4, 4);
  EXPECT_EQ(distance(g, 0, 15), 6);
  EXPECT_EQ(distance(g, 0, 0), 0);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = make_grid(3, 3);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph parsed = read_edge_list(buffer);
  EXPECT_EQ(parsed.vertex_count(), g.vertex_count());
  EXPECT_EQ(parsed.edge_count(), g.edge_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (Vertex u : g.neighbours(v)) EXPECT_TRUE(parsed.has_edge(v, u));
  }
}

TEST(Io, EdgeListRejectsMalformed) {
  std::stringstream bad("3 1\n0 9\n");
  EXPECT_THROW(read_edge_list(bad), std::invalid_argument);
}

TEST(Io, DotContainsLabels) {
  const Graph g = make_cycle(3);
  const auto ids = IdAssignment::reversed(3);
  const std::string dot = to_dot(g, &ids);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

TEST(Properties, Classification) {
  EXPECT_TRUE(is_cycle(make_cycle(5)));
  EXPECT_FALSE(is_cycle(make_path(5)));
  EXPECT_TRUE(is_path(make_path(2)));
  EXPECT_FALSE(is_path(make_star(5)));
  EXPECT_TRUE(is_tree(make_path(6)));
  EXPECT_FALSE(is_tree(make_cycle(6)));
}

TEST(Graph, MirrorPortInvariantHoldsEverywhere) {
  // mirror_port is the only reverse-edge lookup left (the port_to
  // linear-scan fallback is gone), so pin its invariant independently of
  // the builder's own debug assertions: the mirror arc leads back to the
  // origin and mirroring is an involution, for every arc of every family.
  Xoshiro256 rng(31);
  const Graph graphs[] = {make_cycle(9), make_star(8), make_grid(3, 4),
                          make_random_tree(20, rng), make_gnp_connected(18, 0.3, rng)};
  for (const Graph& g : graphs) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      for (std::size_t p = 0; p < g.degree(v); ++p) {
        const Vertex u = g.neighbour(v, p);
        const std::size_t q = g.mirror_port(v, p);
        ASSERT_LT(q, g.degree(u)) << "v=" << v << " p=" << p;
        EXPECT_EQ(g.neighbour(u, q), v) << "mirror must lead back";
        EXPECT_EQ(g.mirror_port(u, q), p) << "mirror is an involution";
        EXPECT_TRUE(g.has_edge(u, v));
        EXPECT_TRUE(g.has_edge(v, u));
      }
    }
  }
}

TEST(Graph, ArcIndexEnumeratesCsrSlots) {
  const Graph g = make_cycle(5);
  EXPECT_EQ(g.arc_count(), 10u);
  std::set<std::size_t> seen;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (std::size_t p = 0; p < g.degree(v); ++p) seen.insert(g.arc_index(v, p));
  }
  EXPECT_EQ(seen.size(), g.arc_count());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), g.arc_count() - 1);
}

}  // namespace
