// Property-based suites: wire encode/decode round-trips under fuzzing, and
// BallGrower views validated against a naive BFS reconstruction on random
// graphs under both knowledge semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/ball.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view.hpp"
#include "local/wire.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(WireProperty, RoundTripFuzz) {
  support::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    // Random schema: sequence of (type, value) records.
    std::vector<int> kinds;
    std::vector<std::uint64_t> u64s;
    std::vector<std::int64_t> i64s;
    std::vector<bool> flags;
    std::vector<std::vector<std::uint64_t>> vectors;

    local::Encoder encoder;
    const std::size_t fields = 1 + rng.below(12);
    for (std::size_t f = 0; f < fields; ++f) {
      switch (rng.below(4)) {
        case 0: {
          const std::uint64_t v = rng.next();
          encoder.u64(v);
          kinds.push_back(0);
          u64s.push_back(v);
          break;
        }
        case 1: {
          const auto v = static_cast<std::int64_t>(rng.next());
          encoder.i64(v);
          kinds.push_back(1);
          i64s.push_back(v);
          break;
        }
        case 2: {
          const bool v = rng.below(2) == 1;
          encoder.flag(v);
          kinds.push_back(2);
          flags.push_back(v);
          break;
        }
        default: {
          std::vector<std::uint64_t> vec(rng.below(6));
          for (auto& x : vec) x = rng.next();
          encoder.u64_vector(vec);
          kinds.push_back(3);
          vectors.push_back(vec);
          break;
        }
      }
    }
    const local::Payload payload = encoder.take();
    local::Decoder decoder(payload);
    std::size_t iu = 0, ii = 0, ifl = 0, iv = 0;
    for (const int kind : kinds) {
      switch (kind) {
        case 0: ASSERT_EQ(decoder.u64(), u64s[iu++]); break;
        case 1: ASSERT_EQ(decoder.i64(), i64s[ii++]); break;
        case 2: ASSERT_EQ(decoder.flag(), flags[ifl++]); break;
        default: ASSERT_EQ(decoder.u64_vector(), vectors[iv++]); break;
      }
    }
    EXPECT_TRUE(decoder.done());
  }
}

TEST(WireProperty, TruncationThrows) {
  local::Encoder encoder;
  encoder.u64(1).u64(2);
  const local::Payload payload = encoder.take();
  local::Decoder d(payload);
  d.u64();
  d.u64();
  EXPECT_THROW(d.u64(), std::out_of_range);

  local::Encoder bad;
  bad.u64(100);  // vector length prefix without the body
  const local::Payload short_payload = bad.take();
  local::Decoder d2(short_payload);
  EXPECT_THROW(d2.u64_vector(), std::out_of_range);
}

// ---- BallGrower vs naive reconstruction ------------------------------------

struct GrowerCase {
  std::string family;
  std::size_t n;
  local::ViewSemantics semantics;
  std::uint64_t seed;
};

class GrowerProperty : public ::testing::TestWithParam<GrowerCase> {};

TEST_P(GrowerProperty, MatchesNaiveBfsReconstruction) {
  const auto& param = GetParam();
  support::Xoshiro256 rng(param.seed);
  const graph::Graph g =
      param.family == "gnp"    ? graph::make_gnp_connected(param.n, 0.12, rng)
      : param.family == "tree" ? graph::make_random_tree(param.n, rng)
      : param.family == "torus"
          ? graph::make_torus(param.n / 6, 6)
          : graph::make_cycle(param.n);
  const std::size_t n = g.vertex_count();
  const auto ids = graph::IdAssignment::random(n, rng);

  local::BallGrower::Scratch scratch(n);
  for (int root_trial = 0; root_trial < 5; ++root_trial) {
    const auto root = static_cast<graph::Vertex>(rng.below(n));
    local::BallGrower grower(g, ids, root, param.semantics, scratch);
    const auto all_dist = graph::bfs_distances(g, root);

    for (int r = 0; r <= 6; ++r) {
      const local::BallView& view = grower.view();
      // (1) Vertex set == BFS ball of radius r (as an id multiset).
      std::set<std::uint64_t> expected_ids;
      for (graph::Vertex v = 0; v < n; ++v) {
        if (all_dist[v] != graph::kUnreachable && all_dist[v] <= r) {
          expected_ids.insert(ids.id_of(v));
        }
      }
      const std::set<std::uint64_t> got_ids(view.ids.begin(), view.ids.end());
      ASSERT_EQ(got_ids, expected_ids) << param.family << " r=" << r;
      ASSERT_EQ(view.ids.size(), expected_ids.size()) << "no duplicates";

      // (2) Distances match the BFS ground truth.
      for (std::size_t local = 0; local < view.size(); ++local) {
        graph::Vertex global = n;
        for (graph::Vertex v = 0; v < n; ++v) {
          if (ids.id_of(v) == view.ids[local]) global = v;
        }
        ASSERT_LT(global, n);
        EXPECT_EQ(view.dist[local], all_dist[global]);
      }

      // (3) Edge visibility per the declared semantics.
      for (std::size_t la = 0; la < view.size(); ++la) {
        // Map local -> global.
        graph::Vertex a = n;
        for (graph::Vertex v = 0; v < n; ++v) {
          if (ids.id_of(v) == view.ids[la]) a = v;
        }
        ASSERT_EQ(view.ports[la].size(), g.degree(a)) << "true degree exposed";
        for (std::size_t port = 0; port < g.degree(a); ++port) {
          const graph::Vertex b = g.neighbour(a, port);
          const bool b_in_ball =
              all_dist[b] != graph::kUnreachable && all_dist[b] <= r;
          bool expect_visible = false;
          if (param.semantics == local::ViewSemantics::kInducedBall) {
            expect_visible = b_in_ball;
          } else {
            expect_visible = std::min(all_dist[a], all_dist[b]) <= r - 1;
          }
          const bool visible = view.ports[la][port] != local::kUnknownTarget;
          EXPECT_EQ(visible, expect_visible)
              << param.family << " r=" << r << " edge " << a << "-" << b;
          if (visible) {
            EXPECT_EQ(view.ids[view.ports[la][port]], ids.id_of(b)) << "right target";
          }
        }
      }

      // (4) covers_graph iff every edge of every ball vertex is visible.
      bool all_visible = view.size() == n;
      for (std::size_t la = 0; la < view.size() && all_visible; ++la) {
        for (const auto target : view.ports[la]) {
          if (target == local::kUnknownTarget) {
            all_visible = false;
            break;
          }
        }
      }
      EXPECT_EQ(view.covers_graph, all_visible);

      grower.grow();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GrowerProperty,
    ::testing::Values(GrowerCase{"gnp", 30, local::ViewSemantics::kInducedBall, 1},
                      GrowerCase{"gnp", 30, local::ViewSemantics::kFloodingKnowledge, 2},
                      GrowerCase{"tree", 40, local::ViewSemantics::kInducedBall, 3},
                      GrowerCase{"tree", 40, local::ViewSemantics::kFloodingKnowledge, 4},
                      GrowerCase{"torus", 36, local::ViewSemantics::kInducedBall, 5},
                      GrowerCase{"torus", 36, local::ViewSemantics::kFloodingKnowledge, 6},
                      GrowerCase{"cycle", 17, local::ViewSemantics::kInducedBall, 7},
                      GrowerCase{"cycle", 17, local::ViewSemantics::kFloodingKnowledge, 8}),
    [](const auto& param_info) {
      return param_info.param.family +
             (param_info.param.semantics == local::ViewSemantics::kInducedBall ? "_induced"
                                                                         : "_flooding") +
             "_s" + std::to_string(param_info.param.seed);
    });

}  // namespace
