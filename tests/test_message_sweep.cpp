// Tests of the message-sweep subsystem: the batch engine's bit-identity to
// per-trial run_messages calls (including algorithm reuse through
// Algorithm::reset), run_message_sweep's accumulators and their shard
// round-trip, and the scenario layer's routing of message algorithms
// through sweep, shard and adaptive-schedule paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "core/message_sweep.hpp"
#include "core/scenario.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/full_info.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

std::vector<graph::IdAssignment> random_batch(std::size_t n, std::size_t trials,
                                              std::uint64_t seed) {
  std::vector<graph::IdAssignment> batch;
  batch.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(seed, t));
    batch.push_back(graph::IdAssignment::random(n, rng));
  }
  return batch;
}

void expect_batch_matches_per_trial(const graph::Graph& g,
                                    const local::AlgorithmFactory& factory,
                                    const local::EngineOptions& options, std::size_t trials,
                                    std::uint64_t seed) {
  const std::size_t n = g.vertex_count();
  const auto batch = random_batch(n, trials, seed);

  std::vector<std::vector<std::int64_t>> outputs(trials, std::vector<std::int64_t>(n, 0));
  std::vector<std::vector<std::size_t>> radii(trials, std::vector<std::size_t>(n, 0));
  local::run_messages_batch(g, batch, factory, options,
                            [&](std::size_t trial, graph::Vertex v, std::int64_t output,
                                std::size_t radius) {
                              outputs[trial][v] = output;
                              radii[trial][v] = radius;
                            });

  for (std::size_t t = 0; t < trials; ++t) {
    const local::RunResult run = local::run_messages(g, batch[t], factory, options);
    EXPECT_EQ(run.outputs, outputs[t]) << "trial " << t;
    EXPECT_EQ(run.radii, radii[t]) << "trial " << t;
  }
}

// ------------------------------------------------------ the batch engine ----

TEST(RunMessagesBatch, MatchesPerTrialRunsForEveryMessageAlgorithm) {
  // One reused engine (and, through reset(), reused algorithm instances)
  // must be invisible in the results: every trial equals a fresh
  // run_messages call. local3 carries the richest cross-round state
  // (snapshots, candidacies), so it is the sharpest reuse probe.
  const auto g = graph::make_cycle(21);
  expect_batch_matches_per_trial(g, algo::make_largest_id_messages(), {}, 5, 31);
  expect_batch_matches_per_trial(g, algo::make_local_three_colouring(), {}, 5, 32);
}

TEST(RunMessagesBatch, FullInfoAdapterIsReusableAcrossTrials) {
  // The gossip adapter holds the largest per-run state of any Algorithm
  // (fact sets, reconstruction scratch); its reset() must scrub all of it.
  support::Xoshiro256 rng(8);
  const auto g = graph::make_random_tree(18, rng);
  expect_batch_matches_per_trial(
      g, local::make_full_info_factory(algo::make_largest_id_view()), {}, 4, 33);
}

TEST(RunMessagesBatch, NonResettableAlgorithmsAreReconstructed) {
  // An algorithm that declines reset() falls back to per-trial
  // construction: correctness must not depend on the opt-in.
  class StickyLargestId final : public local::Algorithm {
   public:
    StickyLargestId() : inner_(algo::make_largest_id_messages()()) {}
    void on_start(local::NodeContext& ctx) override { inner_->on_start(ctx); }
    void on_round(local::NodeContext& ctx, std::span<const local::Message> inbox) override {
      inner_->on_round(ctx, inbox);
    }
    // No reset override: default false.
   private:
    std::unique_ptr<local::Algorithm> inner_;
  };
  const auto g = graph::make_cycle(17);
  expect_batch_matches_per_trial(
      g, [] { return std::make_unique<StickyLargestId>(); }, {}, 4, 34);
}

// --------------------------------------------------------- the sweep API ----

TEST(MessageSweep, AccumulatorsMatchPerTrialRunsUnderSweepSeeds) {
  // The sweep's id streams derive from (seed, point, trial) exactly as in
  // the view sweeps; rebuilding them here and running the engine per trial
  // must reproduce every integer in the accumulator.
  const std::size_t n = 19;
  const auto g = graph::make_cycle(n);
  core::BatchedSweepOptions options;
  options.trials = 6;
  options.seed = 77;

  const core::PointAccumulator acc = core::accumulate_message_point(
      g, /*point_index=*/0, algo::make_largest_id_messages(), {}, options, 0, options.trials);

  EXPECT_EQ(acc.n, n);
  EXPECT_EQ(acc.edges, g.edge_count());
  const std::uint64_t point_seed = support::derive_seed(options.seed, 0);
  local::RadiusHistogram expected_hist;
  local::RadiusHistogram expected_edge_hist;
  std::vector<std::uint64_t> expected_node_sum(n, 0);
  const auto edges = core::canonical_edges(g);
  for (std::size_t t = 0; t < options.trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(point_seed, t));
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto run = local::run_messages(g, ids, algo::make_largest_id_messages());
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto r = static_cast<std::uint64_t>(run.radii[v]);
      sum += r;
      max = std::max(max, r);
      expected_node_sum[v] += r;
    }
    expected_hist.add_profile(run.radii);
    EXPECT_EQ(acc.trial_sum[t], sum) << "trial " << t;
    EXPECT_EQ(acc.trial_max[t], max) << "trial " << t;
    EXPECT_EQ(acc.trial_edge_sum[t],
              core::accumulate_edge_times(edges, run.radii, expected_edge_hist))
        << "trial " << t;
  }
  EXPECT_EQ(acc.node_sum, expected_node_sum);
  EXPECT_EQ(acc.histogram, expected_hist);
  EXPECT_EQ(acc.edge_histogram, expected_edge_hist);
}

TEST(MessageSweep, IndependentOfBatchSize) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const auto algorithms = [](std::size_t) { return algo::make_largest_id_messages(); };
  core::BatchedSweepOptions base;
  base.trials = 7;
  base.seed = 3;
  const auto reference = core::run_message_sweep({16, 24}, graphs, algorithms, {}, base);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{3}}) {
    core::BatchedSweepOptions options = base;
    options.batch_size = batch_size;
    EXPECT_EQ(core::run_message_sweep({16, 24}, graphs, algorithms, {}, options), reference)
        << "batch=" << batch_size;
  }
}

TEST(MessageSweep, ShardedMergeIsBitIdenticalToMonolithicSweep) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {14, 22};
  spec.seed = 11;
  spec.schedule.max_trials = 9;
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  const core::BatchedSweepOptions options = resolved.sweep_options();

  const auto monolithic = core::run_message_sweep(
      resolved.spec.ns, resolved.graphs, resolved.messages, resolved.message_engine, options);

  core::SweepPlanMeta meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
  meta.algorithm = resolved.spec.algorithm;
  meta.scenario = core::scenario_to_json(resolved.spec);
  meta.engine = resolved.spec.engine;
  std::vector<core::ShardDocument> docs;
  for (const auto& shard : core::plan_shards(resolved.spec.ns.size(), options.trials, 3)) {
    core::ShardDocument doc;
    doc.meta = meta;
    doc.shard = shard;
    doc.points = core::run_scenario_shard(resolved, options, shard);
    // Through the JSON artefact: serialisation must preserve every integer,
    // edge partials included.
    docs.push_back(core::parse_shard_json(core::shard_to_json(doc)));
  }
  EXPECT_EQ(core::merge_shards(std::move(docs)), monolithic);
}

TEST(MessageSweep, MergeRejectsCrossEngineArtefacts) {
  // largest-id (view) and largest-id-msg (message) on the same plan both
  // produce plain integer radii; only the engine/scenario labels reveal
  // that they must never merge.
  const auto make_doc = [](const char* algorithm) {
    core::ScenarioSpec spec;
    spec.family = {"cycle", {}};
    spec.algorithm = algorithm;
    spec.ns = {12};
    spec.seed = 2;
    spec.schedule.max_trials = 4;
    // Flooding for both (the message path canonicalises to it anyway), so
    // the two metas agree on every field except `engine`.
    spec.semantics = local::ViewSemantics::kFloodingKnowledge;
    const core::ResolvedScenario resolved = core::resolve_scenario(spec);
    const core::BatchedSweepOptions options = resolved.sweep_options();
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
    doc.meta.algorithm = "shared-label";  // force the engine field to decide
    doc.meta.scenario = "";
    doc.meta.engine = resolved.spec.engine;
    doc.shard = {0, 1, 0, 2};
    doc.points = core::run_scenario_shard(resolved, options, doc.shard);
    return core::parse_shard_json(core::shard_to_json(doc));
  };
  std::vector<core::ShardDocument> mixed;
  mixed.push_back(make_doc("largest-id"));
  mixed.push_back(make_doc("largest-id-msg"));
  mixed[1].shard.trial_begin = 2;  // pretend to continue the plan
  EXPECT_THROW(core::merge_shards(std::move(mixed)), std::logic_error);
}

// ------------------------------------------------------- scenario layer ----

TEST(MessageScenario, RunScenarioSweepsMessageAlgorithms) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {20};
  spec.seed = 5;
  spec.schedule.max_trials = 6;
  const core::ScenarioResult result = core::run_scenario(spec);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.spec.engine, "message");
  const auto& p = result.points[0].point;
  EXPECT_EQ(p.n, 20u);
  EXPECT_EQ(p.trials, 6u);
  EXPECT_EQ(p.radius.samples, 20u * 6u);
  EXPECT_EQ(p.edges, 20u);
  EXPECT_EQ(p.edge_time.samples, 20u * 6u);
  // An edge finishes when its later endpoint does, so its average sits at
  // or above the node average and at or below the worst case.
  EXPECT_GE(p.edge_avg_mean, p.avg_mean);
  EXPECT_LE(p.edge_avg_mean, static_cast<double>(p.max_worst));
}

TEST(MessageScenario, AdaptiveRunIsBitIdenticalToFixedRunOfStoppedCount) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {18};
  spec.seed = 21;
  spec.schedule.max_trials = 16;
  spec.schedule.min_trials = 4;
  spec.schedule.batch = 4;
  spec.schedule.target_half_width = 0.2;

  const core::ScenarioResult adaptive = core::run_scenario(spec);
  ASSERT_EQ(adaptive.points.size(), 1u);

  core::ScenarioSpec fixed = spec;
  fixed.schedule = core::TrialSchedule{};
  fixed.schedule.max_trials = adaptive.points[0].point.trials;
  const core::ScenarioResult reference = core::run_scenario(fixed);
  EXPECT_EQ(adaptive.points[0].point, reference.points[0].point);
}

}  // namespace
