// Cross-module integration tests: three implementations of each algorithm
// agree; algorithms compose (colouring -> MIS); instrumented runs add up.
#include <gtest/gtest.h>

#include "algo/cole_vishkin.hpp"
#include "algo/colour_reduction.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/mis_ring.hpp"
#include "algo/validity.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/full_info.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(Integration, LargestIdThreeWayAgreement) {
  // Ball engine (flooding), native message protocol, and the generic
  // full-information adapter must produce identical radii and outputs.
  support::Xoshiro256 rng(42);
  for (const std::size_t n : {5u, 8u, 13u, 21u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);

    local::ViewEngineOptions flooding;
    flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
    const auto views = local::run_views(g, ids, algo::make_largest_id_view(), flooding);
    const auto native = local::run_messages(g, ids, algo::make_largest_id_messages());
    const auto adapter = local::run_views_by_messages(g, ids, algo::make_largest_id_view());

    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(views.outputs[v], native.outputs[v]) << "n " << n << " v " << v;
      EXPECT_EQ(views.outputs[v], adapter.outputs[v]) << "n " << n << " v " << v;
      EXPECT_EQ(views.radii[v], native.radii[v]) << "n " << n << " v " << v;
      EXPECT_EQ(views.radii[v], adapter.radii[v]) << "n " << n << " v " << v;
    }
  }
}

TEST(Integration, ColeVishkinThroughTheAdapter) {
  const std::size_t n = 16;
  support::Xoshiro256 rng(43);
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);

  local::ViewEngineOptions flooding;
  flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
  const auto views = local::run_views(g, ids, algo::make_cole_vishkin_view(n), flooding);
  const auto adapter =
      local::run_views_by_messages(g, ids, algo::make_cole_vishkin_view(n));
  EXPECT_TRUE(algo::is_valid_colouring(g, views.outputs, 3));
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(views.outputs[v], adapter.outputs[v]) << "v " << v;
    EXPECT_EQ(views.radii[v], adapter.radii[v]) << "v " << v;
  }
}

TEST(Integration, KnownAndUnknownNColouringsBothValid) {
  support::Xoshiro256 rng(44);
  for (const std::size_t n : {16u, 64u, 256u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);

    const auto known = local::run_views(g, ids, algo::make_cole_vishkin_view(n));
    EXPECT_TRUE(algo::is_valid_colouring(g, known.outputs, 3));

    local::EngineOptions options;
    options.max_rounds = 10'000;
    const auto unknown =
        local::run_messages(g, ids, algo::make_local_three_colouring(), options);
    EXPECT_TRUE(algo::is_valid_colouring(g, unknown.outputs, 3));

    // The unknown-n protocol must stay within a constant factor of the
    // known-n schedule on average.
    EXPECT_LE(unknown.average_radius(),
              12.0 * static_cast<double>(algo::cv_schedule_rounds(n)));
  }
}

TEST(Integration, MisIsConsistentWithColouring) {
  const std::size_t n = 40;
  support::Xoshiro256 rng(45);
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);

  const auto colours = local::run_views(g, ids, algo::make_cole_vishkin_view(n));
  const auto mis = local::run_views(g, ids, algo::make_mis_ring_view(n));
  EXPECT_TRUE(algo::is_maximal_independent_set(g, mis.outputs));
  // Greedy admission: every colour-0 vertex is in the set.
  for (std::size_t v = 0; v < n; ++v) {
    if (colours.outputs[v] == 0) {
      EXPECT_EQ(mis.outputs[v], 1) << "v " << v;
    }
  }
}

TEST(Integration, TraceAccountsForEverything) {
  const std::size_t n = 12;
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  local::Trace trace;
  local::EngineOptions options;
  options.trace = &trace;
  const auto run = local::run_messages(g, ids, algo::make_largest_id_messages(), options);

  std::size_t outputs_total = 0;
  std::uint64_t messages_total = 0;
  for (const auto& round : trace.rounds()) {
    outputs_total += round.outputs_set;
    messages_total += round.messages;
  }
  EXPECT_EQ(outputs_total, n);
  EXPECT_EQ(messages_total, run.messages);
  EXPECT_EQ(trace.rounds().size(), run.rounds + 1);  // includes round 0
  EXPECT_GT(run.words, 0u);
}

TEST(Integration, AverageVersusWorstGapGrowsWithN) {
  // The paper's headline: the measure gap is unbounded for largest-ID.
  support::Xoshiro256 rng(46);
  double previous_gap = 0.0;
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto run = local::run_views(g, ids, algo::make_largest_id_view());
    const double gap =
        static_cast<double>(run.max_radius()) / std::max(run.average_radius(), 1e-9);
    EXPECT_GT(gap, previous_gap * 1.2) << "gap must keep widening, n = " << n;
    previous_gap = gap;
  }
}

}  // namespace
