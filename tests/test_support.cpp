// Unit tests for the support layer: RNG, math, statistics, tables, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/csv.hpp"
#include "support/json_writer.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace avglocal::support;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c) << "different seeds should diverge";
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversSmallRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RandomPermutationIsAPermutation) {
  Xoshiro256 rng(5);
  const auto perm = random_permutation(257, rng);
  ASSERT_EQ(perm.size(), 257u);
  std::set<std::uint64_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 257u);
  EXPECT_EQ(*values.begin(), 1u);
  EXPECT_EQ(*values.rbegin(), 257u);
}

TEST(Rng, DerivedSeedsDiffer) {
  const auto s1 = derive_seed(1, 0);
  const auto s2 = derive_seed(1, 1);
  const auto s3 = derive_seed(2, 0);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1, derive_seed(1, 0));
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(Math, BitWidth) {
  EXPECT_EQ(bit_width_u64(0), 0);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(7), 3);
  EXPECT_EQ(bit_width_u64(8), 4);
}

TEST(Math, LogStarAtTowerValues) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_EQ(log_star(65537.0), 5);
}

TEST(Math, Tower) {
  EXPECT_EQ(tower(0), 1u);
  EXPECT_EQ(tower(1), 2u);
  EXPECT_EQ(tower(2), 4u);
  EXPECT_EQ(tower(3), 16u);
  EXPECT_EQ(tower(4), 65536u);
}

TEST(Math, LogStarInverseOfTower) {
  for (int k = 1; k <= 4; ++k) {
    EXPECT_EQ(log_star(static_cast<double>(tower(k))), k);
  }
}

TEST(Stats, RunningMatchesNaive) {
  RunningStats rs;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
  double sum = 0;
  for (double x : xs) {
    rs.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_EQ(rs.min(), -7.5);
  EXPECT_EQ(rs.max(), 10.0);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats left, right, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    (i < 20 ? left : right).add(x);
    whole.add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.count(), whole.count());
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted = {0, 10, 20, 30, 40};
  EXPECT_NEAR(percentile_sorted(sorted, 0.0), 0, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 1.0), 40, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.5), 20, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.25), 10, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.125), 5, 1e-12);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, FitLinearRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
}

TEST(Stats, FitLinearRejectsDegenerate) {
  EXPECT_THROW(fit_linear({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2.0, 2.0}, {1.0, 3.0}), std::logic_error);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({Table::cell(std::int64_t{-7}), Table::cell(3.14159, 2), "x"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("long header"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  EXPECT_NE(md.find("-7"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_text().find("only"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"n", "avg"});
  writer.write_row({"8", "1,5"});
  EXPECT_EQ(out.str(), "n,avg\n8,\"1,5\"\n");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("core");
  json.key("ok").value(true);
  json.key("count").value(std::uint64_t{3});
  json.key("ratio").value(2.5);
  json.key("items").begin_array().value(std::int64_t{-1}).value("x").end_array();
  json.key("nested").begin_object().key("empty").begin_array().end_array().end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"core\",\"ok\":true,\"count\":3,\"ratio\":2.5,"
            "\"items\":[-1,\"x\"],\"nested\":{\"empty\":[]}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_array().value("a\"b\\c\n").end_array();
  EXPECT_EQ(json.str(), "[\"a\\\"b\\\\c\\n\"]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter json;
  json.begin_array().value(0.1).value(1e300).end_array();
  EXPECT_EQ(json.str(), "[0.1,1e+300]");
}

}  // namespace
