// Unit tests for the support layer: RNG, math, statistics, tables, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "local/metrics.hpp"
#include "support/csv.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace avglocal::support;
namespace support = avglocal::support;
namespace local = avglocal::local;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c) << "different seeds should diverge";
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversSmallRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RandomPermutationIsAPermutation) {
  Xoshiro256 rng(5);
  const auto perm = random_permutation(257, rng);
  ASSERT_EQ(perm.size(), 257u);
  std::set<std::uint64_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 257u);
  EXPECT_EQ(*values.begin(), 1u);
  EXPECT_EQ(*values.rbegin(), 257u);
}

TEST(Rng, DerivedSeedsDiffer) {
  const auto s1 = derive_seed(1, 0);
  const auto s2 = derive_seed(1, 1);
  const auto s3 = derive_seed(2, 0);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1, derive_seed(1, 0));
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(Math, BitWidth) {
  EXPECT_EQ(bit_width_u64(0), 0);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(7), 3);
  EXPECT_EQ(bit_width_u64(8), 4);
}

TEST(Math, LogStarAtTowerValues) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_EQ(log_star(65537.0), 5);
}

TEST(Math, Tower) {
  EXPECT_EQ(tower(0), 1u);
  EXPECT_EQ(tower(1), 2u);
  EXPECT_EQ(tower(2), 4u);
  EXPECT_EQ(tower(3), 16u);
  EXPECT_EQ(tower(4), 65536u);
}

TEST(Math, LogStarInverseOfTower) {
  for (int k = 1; k <= 4; ++k) {
    EXPECT_EQ(log_star(static_cast<double>(tower(k))), k);
  }
}

TEST(Stats, RunningMatchesNaive) {
  RunningStats rs;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
  double sum = 0;
  for (double x : xs) {
    rs.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_EQ(rs.min(), -7.5);
  EXPECT_EQ(rs.max(), 10.0);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats left, right, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    (i < 20 ? left : right).add(x);
    whole.add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.count(), whole.count());
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted = {0, 10, 20, 30, 40};
  EXPECT_NEAR(percentile_sorted(sorted, 0.0), 0, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 1.0), 40, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.5), 20, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.25), 10, 1e-12);
  EXPECT_NEAR(percentile_sorted(sorted, 0.125), 5, 1e-12);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, FitLinearRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
}

TEST(Stats, FitLinearRejectsDegenerate) {
  EXPECT_THROW(fit_linear({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({2.0, 2.0}, {1.0, 3.0}), std::logic_error);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({Table::cell(std::int64_t{-7}), Table::cell(3.14159, 2), "x"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("long header"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  EXPECT_NE(md.find("-7"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_text().find("only"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"n", "avg"});
  writer.write_row({"8", "1,5"});
  EXPECT_EQ(out.str(), "n,avg\n8,\"1,5\"\n");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("core");
  json.key("ok").value(true);
  json.key("count").value(std::uint64_t{3});
  json.key("ratio").value(2.5);
  json.key("items").begin_array().value(std::int64_t{-1}).value("x").end_array();
  json.key("nested").begin_object().key("empty").begin_array().end_array().end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"core\",\"ok\":true,\"count\":3,\"ratio\":2.5,"
            "\"items\":[-1,\"x\"],\"nested\":{\"empty\":[]}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_array().value("a\"b\\c\n").end_array();
  EXPECT_EQ(json.str(), "[\"a\\\"b\\\\c\\n\"]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter json;
  json.begin_array().value(0.1).value(1e300).end_array();
  EXPECT_EQ(json.str(), "[0.1,1e+300]");
}

TEST(JsonWriter, NonFiniteDoublesSerialiseAsNull) {
  // JSON has no nan/inf tokens, so emitting them verbatim would produce an
  // unparseable document. Real artefacts reach this path: RunningStats
  // min()/max() on an empty accumulator return NaN.
  JsonWriter json;
  json.begin_array()
      .value(1.5)
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(-std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(json.str(), "[1.5,null,null,null]");

  // Round-trip through json_reader: the document parses and the non-finite
  // slots come back as JSON null.
  const auto doc = support::parse_json(json.str());
  ASSERT_EQ(doc.size(), 4u);
  EXPECT_DOUBLE_EQ(doc[0].as_double(), 1.5);
  EXPECT_TRUE(doc[1].is_null());
  EXPECT_TRUE(doc[2].is_null());
  EXPECT_TRUE(doc[3].is_null());

  JsonWriter from_stats;
  from_stats.begin_object().key("min").value(support::RunningStats().min()).end_object();
  EXPECT_EQ(from_stats.str(), "{\"min\":null}");
  EXPECT_TRUE(support::parse_json(from_stats.str()).at("min").is_null());
}

TEST(JsonReader, ObjectMembersIterateInDocumentOrder) {
  const auto doc = support::parse_json("{\"b\":1,\"a\":2}");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "b");
  EXPECT_EQ(members[0].second.as_u64(), 1u);
  EXPECT_EQ(members[1].first, "a");
  EXPECT_THROW(support::parse_json("[1]").members(), std::runtime_error);
}

TEST(Stats, EmptyExtremaAreNaN) {
  // The empty-state contract: an accumulator with no observations has no
  // extrema, and NaN propagates loudly where a stale 0.0 would lie.
  const support::RunningStats empty;
  EXPECT_TRUE(std::isnan(empty.min()));
  EXPECT_TRUE(std::isnan(empty.max()));
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.sum(), 0.0);
  EXPECT_EQ(empty.count(), 0u);

  support::RunningStats one;
  one.add(-3.5);
  EXPECT_DOUBLE_EQ(one.min(), -3.5);
  EXPECT_DOUBLE_EQ(one.max(), -3.5);
}

TEST(Stats, MergeHandlesEmptySides) {
  support::RunningStats filled;
  filled.add(2.0);
  filled.add(-4.0);

  // Empty into filled: a no-op (extrema must not absorb the empty side's
  // indeterminate state).
  support::RunningStats a = filled;
  a.merge(support::RunningStats());
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), -4.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
  EXPECT_DOUBLE_EQ(a.mean(), filled.mean());

  // Filled into empty: copies everything, including extrema.
  support::RunningStats b;
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), -4.0);
  EXPECT_DOUBLE_EQ(b.max(), 2.0);

  // Empty into empty: still empty, extrema still NaN.
  support::RunningStats c;
  c.merge(support::RunningStats());
  EXPECT_EQ(c.count(), 0u);
  EXPECT_TRUE(std::isnan(c.min()));
  EXPECT_TRUE(std::isnan(c.max()));
}

TEST(JsonReader, ParsesScalarsArraysAndObjects) {
  const auto doc = support::parse_json(
      "  {\"name\": \"a\\\"b\\n\", \"flag\": true, \"none\": null,\n"
      "   \"big\": 18446744073709551615, \"neg\": -42, \"pi\": 3.25,\n"
      "   \"items\": [1, 2, 3], \"nested\": {\"k\": [false]}}  ");
  EXPECT_EQ(doc.at("name").as_string(), "a\"b\n");
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  // 2^64 - 1 round-trips exactly: integers never pass through a double.
  EXPECT_EQ(doc.at("big").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("neg").as_i64(), -42);
  EXPECT_DOUBLE_EQ(doc.at("pi").as_double(), 3.25);
  ASSERT_EQ(doc.at("items").size(), 3u);
  EXPECT_EQ(doc.at("items")[1].as_u64(), 2u);
  EXPECT_FALSE(doc.at("nested").at("k")[0].as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
}

TEST(JsonReader, RoundTripsJsonWriterOutput) {
  support::JsonWriter writer;
  writer.begin_object();
  writer.key("values").begin_array();
  writer.value(std::uint64_t{0}).value(std::uint64_t{1234567890123456789ull});
  writer.end_array();
  writer.key("text").value("line\nbreak \"quoted\"");
  writer.key("x").value(0.1);
  writer.end_object();

  const auto doc = support::parse_json(writer.str());
  EXPECT_EQ(doc.at("values")[1].as_u64(), 1234567890123456789ull);
  EXPECT_EQ(doc.at("text").as_string(), "line\nbreak \"quoted\"");
  EXPECT_DOUBLE_EQ(doc.at("x").as_double(), 0.1);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(support::parse_json(""), std::runtime_error);
  EXPECT_THROW(support::parse_json("{"), std::runtime_error);
  EXPECT_THROW(support::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(support::parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(support::parse_json("true false"), std::runtime_error);
  EXPECT_THROW(support::parse_json("12..5"), std::runtime_error);
  EXPECT_THROW(support::parse_json("\"unterminated"), std::runtime_error);
  // Type mismatches are runtime errors too.
  const auto doc = support::parse_json("{\"a\": \"text\"}");
  EXPECT_THROW(doc.at("a").as_u64(), std::runtime_error);
  EXPECT_THROW(doc.at("a")[0], std::runtime_error);
  // A negative number is not a u64.
  EXPECT_THROW(support::parse_json("-1").as_u64(), std::runtime_error);
}

TEST(RadiusHistogram, CountsMergesAndQuantiles) {
  local::RadiusHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);

  hist.add(0, 4);
  hist.add(2, 4);
  hist.add(10);
  EXPECT_EQ(hist.samples(), 9u);
  EXPECT_EQ(hist.max_radius(), 10u);
  EXPECT_DOUBLE_EQ(hist.mean(), (0.0 * 4 + 2.0 * 4 + 10.0) / 9.0);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(0.44), 0u);  // cumulative 4/9 covers it
  EXPECT_EQ(hist.quantile(0.5), 2u);
  EXPECT_EQ(hist.quantile(0.88), 2u);  // target 7.92 <= cumulative 8
  EXPECT_EQ(hist.quantile(0.95), 10u);
  EXPECT_EQ(hist.quantile(1.0), 10u);

  local::RadiusHistogram other;
  other.add(1, 2);
  hist.merge(other);
  EXPECT_EQ(hist.samples(), 11u);
  EXPECT_EQ(hist.counts()[1], 2u);

  // Construction from raw counts trims trailing zeros, so equality is
  // representation-independent.
  local::RadiusHistogram padded(std::vector<std::uint64_t>{4, 2, 4, 0, 0});
  local::RadiusHistogram tight(std::vector<std::uint64_t>{4, 2, 4});
  EXPECT_EQ(padded, tight);
}

}  // namespace
