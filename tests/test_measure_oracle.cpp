// Brute-force oracle for the node- and edge-averaged measures: on graphs
// with n <= 8, enumerate every identifier permutation (or, for the sweep
// pins, rebuild the sweep's exact id streams), recompute every measure by
// direct definition - independent double loops over vertices, edges and
// assignments, no histograms, no accumulators - and require measure.cpp and
// finalize_point to agree exactly. Integer quantities must match bit for
// bit; derived doubles are recomputed with the same operations in the same
// order, so they must too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algo/greedy_colouring.hpp"
#include "algo/largest_id.hpp"
#include "core/batched_sweep.hpp"
#include "core/measure.hpp"
#include "core/message_sweep.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace avglocal;

/// Brute-force edge times: every unordered pair (u, v) that is adjacent,
/// found via has_edge - an implementation independent of the canonical
/// CSR-arc enumeration the library uses.
std::vector<std::size_t> brute_force_edge_times(const graph::Graph& g,
                                                const std::vector<std::size_t>& radii) {
  std::vector<std::size_t> times;
  for (graph::Vertex u = 0; u < g.vertex_count(); ++u) {
    for (graph::Vertex v = u + 1; v < g.vertex_count(); ++v) {
      if (g.has_edge(u, v)) times.push_back(std::max(radii[u], radii[v]));
    }
  }
  return times;
}

std::vector<graph::Graph> oracle_graphs() {
  support::Xoshiro256 rng(17);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::make_cycle(5));
  graphs.push_back(graph::make_path(6));
  graphs.push_back(graph::make_complete(4));
  graphs.push_back(graph::make_star(7));
  graphs.push_back(graph::make_random_tree(8, rng));
  return graphs;
}

TEST(MeasureOracle, EdgeMeasuresMatchBruteForceOverAllPermutationsAtSmallN) {
  for (const graph::Graph& g : oracle_graphs()) {
    const std::size_t n = g.vertex_count();
    const auto edges = core::canonical_edges(g);
    ASSERT_EQ(edges.size(), g.edge_count());

    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 1);
    std::size_t permutations = 0;
    do {
      // Cap the 8! = 40320 case: every 97th permutation still covers the
      // space far better than random sampling would.
      if (n >= 8 && permutations++ % 97 != 0) continue;
      const graph::IdAssignment ids{std::vector<std::uint64_t>(perm)};
      const auto run = local::run_views(g, ids, algo::make_largest_id_view());

      const auto expected = brute_force_edge_times(g, run.radii);
      std::uint64_t expected_sum = 0;
      std::size_t expected_max = 0;
      for (const std::size_t t : expected) {
        expected_sum += t;
        expected_max = std::max(expected_max, t);
      }

      const core::EdgeMeasurement m = core::measure_edges(g, run.radii);
      ASSERT_EQ(m.edges, expected.size());
      ASSERT_EQ(m.sum_time, expected_sum);
      ASSERT_EQ(m.max_time, expected_max);
      ASSERT_EQ(m.avg_time, static_cast<double>(expected_sum) /
                                static_cast<double>(expected.size()));

      local::RadiusHistogram hist;
      ASSERT_EQ(core::accumulate_edge_times(edges, run.radii, hist), expected_sum);
      ASSERT_EQ(hist.samples(), expected.size());
      ASSERT_EQ(hist.max_radius(), expected_max);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

/// Recomputes every field of a finalized sweep point from per-trial
/// run_views (or run_messages) results obtained on the sweep's own id
/// streams: the full direct-enumeration pin of the averaged measures.
void expect_point_matches_brute_force(const graph::Graph& g,
                                      const core::BatchedSweepOptions& options,
                                      const core::BatchedSweepPoint& point,
                                      const std::vector<local::RunResult>& runs) {
  const std::size_t n = g.vertex_count();
  const std::size_t trials = options.trials;
  ASSERT_EQ(runs.size(), trials);

  // Node-averaged family, by definition.
  support::RunningStats avg_stats;
  support::RunningStats max_stats;
  std::vector<double> node_mean(n, 0.0);
  std::uint64_t radius_total = 0;
  std::size_t radius_max = 0;
  for (const auto& run : runs) {
    std::uint64_t sum = 0;
    std::size_t max = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      sum += run.radii[v];
      max = std::max(max, run.radii[v]);
      node_mean[v] += static_cast<double>(run.radii[v]);
      radius_total += run.radii[v];
      radius_max = std::max(radius_max, run.radii[v]);
    }
    avg_stats.add(static_cast<double>(sum) / static_cast<double>(n));
    max_stats.add(static_cast<double>(max));
  }
  for (double& m : node_mean) m /= static_cast<double>(trials);

  EXPECT_EQ(point.avg_mean, avg_stats.mean());
  EXPECT_EQ(point.avg_sd, avg_stats.stddev());
  EXPECT_EQ(point.max_mean, max_stats.mean());
  EXPECT_EQ(point.radius.samples, static_cast<std::uint64_t>(n) * trials);
  EXPECT_EQ(point.radius.mean, static_cast<double>(radius_total) /
                                   static_cast<double>(n * trials));
  EXPECT_EQ(point.radius.max, radius_max);
  EXPECT_EQ(point.node_mean_min, *std::min_element(node_mean.begin(), node_mean.end()));
  EXPECT_EQ(point.node_mean_max, *std::max_element(node_mean.begin(), node_mean.end()));

  // Edge-averaged family, by definition (brute-force pair enumeration).
  const std::size_t m = g.edge_count();
  support::RunningStats edge_stats;
  std::uint64_t edge_total = 0;
  std::size_t edge_max = 0;
  std::uint64_t edge_samples = 0;
  for (const auto& run : runs) {
    const auto times = brute_force_edge_times(g, run.radii);
    std::uint64_t sum = 0;
    for (const std::size_t t : times) {
      sum += t;
      edge_max = std::max(edge_max, t);
    }
    edge_total += sum;
    edge_samples += times.size();
    edge_stats.add(static_cast<double>(sum) / static_cast<double>(m));
  }
  EXPECT_EQ(point.edges, m);
  EXPECT_EQ(point.edge_avg_mean, edge_stats.mean());
  EXPECT_EQ(point.edge_avg_sd, edge_stats.stddev());
  EXPECT_EQ(point.edge_time.samples, edge_samples);
  EXPECT_EQ(point.edge_time.mean,
            static_cast<double>(edge_total) / static_cast<double>(edge_samples));
  EXPECT_EQ(point.edge_time.max, edge_max);

  // Quantiles, by the definition in RadiusHistogram::quantile: the smallest
  // time whose cumulative sample count reaches q * samples.
  std::vector<std::size_t> all_times;
  for (const auto& run : runs) {
    const auto times = brute_force_edge_times(g, run.radii);
    all_times.insert(all_times.end(), times.begin(), times.end());
  }
  std::sort(all_times.begin(), all_times.end());
  ASSERT_EQ(point.edge_time.probs.size(), point.edge_time.quantiles.size());
  for (std::size_t i = 0; i < point.edge_time.probs.size(); ++i) {
    const double q = point.edge_time.probs[i];
    const double target = q * static_cast<double>(all_times.size());
    std::size_t cumulative = 0;
    std::size_t expected = all_times.back();
    // The definition mirrored by RadiusHistogram::quantile: the smallest
    // *occurring* time whose cumulative count reaches q * samples.
    for (std::size_t t = 0; t <= all_times.back(); ++t) {
      const auto count = static_cast<std::size_t>(
          std::upper_bound(all_times.begin(), all_times.end(), t) -
          std::lower_bound(all_times.begin(), all_times.end(), t));
      cumulative += count;
      if (count != 0 && static_cast<double>(cumulative) >= target) {
        expected = t;
        break;
      }
    }
    EXPECT_EQ(point.edge_time.quantiles[i], expected) << "q=" << q;
  }
}

TEST(MeasureOracle, ViewSweepPointMatchesDirectEnumeration) {
  const auto g = graph::make_cycle(7);
  core::BatchedSweepOptions options;
  options.trials = 10;
  options.seed = 23;
  options.threads = 1;
  options.quantile_probs = {0.0, 0.25, 0.5, 0.9, 1.0};

  const auto points = core::run_batched_sweep(
      {7}, [](std::size_t n) { return graph::make_cycle(n); }, algo::make_largest_id_view(),
      options);
  ASSERT_EQ(points.size(), 1u);

  // Rebuild the sweep's id streams and run each trial directly.
  std::vector<local::RunResult> runs;
  const std::uint64_t point_seed = support::derive_seed(options.seed, 0);
  for (std::size_t t = 0; t < options.trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(point_seed, t));
    const auto ids = graph::IdAssignment::random(7, rng);
    runs.push_back(local::run_views(g, ids, algo::make_largest_id_view()));
  }
  expect_point_matches_brute_force(g, options, points[0], runs);
}

TEST(MeasureOracle, MessageSweepPointMatchesDirectEnumeration) {
  support::Xoshiro256 graph_rng(3);
  const auto g = graph::make_random_tree(8, graph_rng);
  core::BatchedSweepOptions options;
  options.trials = 8;
  options.seed = 41;
  options.quantile_probs = {0.5, 0.9, 0.99};

  const core::PointAccumulator acc = core::accumulate_message_point(
      g, 0, algo::make_greedy_colouring_messages(), {}, options, 0, options.trials);
  const auto point = core::finalize_point(acc, options);

  std::vector<local::RunResult> runs;
  const std::uint64_t point_seed = support::derive_seed(options.seed, 0);
  for (std::size_t t = 0; t < options.trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(point_seed, t));
    const auto ids = graph::IdAssignment::random(8, rng);
    runs.push_back(local::run_messages(g, ids, algo::make_greedy_colouring_messages()));
  }
  expect_point_matches_brute_force(g, options, point, runs);
}

}  // namespace
