// Executable Lemma 2: the smoothness bound, the improvement transformation
// A -> A', its dominance, and the validity of A' across instances.
#include <gtest/gtest.h>

#include "algo/cole_vishkin.hpp"
#include "algo/validity.hpp"
#include "analysis/tabular.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;
using analysis::Lemma2Improved;
using analysis::RingViewFunction;

/// Cole-Vishkin with one designated laggard identifier that waits for a
/// larger radius before outputting its (still correct) colour. Introduces a
/// radius-smoothness violation without breaking validity.
class LazyColouring final : public local::ViewAlgorithm {
 public:
  LazyColouring(std::size_t n, std::uint64_t laggard, std::size_t big_radius)
      : inner_(algo::make_cole_vishkin_view(n)()), laggard_(laggard), big_(big_radius) {}

  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    if (view.root_id() == laggard_ && static_cast<std::size_t>(view.radius) < big_ &&
        !view.covers_graph) {
      return std::nullopt;
    }
    return inner_->on_view(view);
  }

 private:
  std::unique_ptr<local::ViewAlgorithm> inner_;
  std::uint64_t laggard_;
  std::size_t big_;
};

constexpr std::size_t kN = 24;
constexpr std::uint64_t kLaggard = 13;
constexpr std::size_t kBigRadius = 9;

local::ViewAlgorithmFactory lazy_factory() {
  return [] { return std::make_unique<LazyColouring>(kN, kLaggard, kBigRadius); };
}

std::vector<std::uint64_t> test_instance() {
  avglocal::support::Xoshiro256 rng(2024);
  return support::random_permutation(kN, rng);
}

TEST(RingViewFunction, ReproducesEngineRun) {
  const std::size_t n = 16;
  support::Xoshiro256 rng(5);
  const auto ids_vec = support::random_permutation(n, rng);
  const RingViewFunction fn(algo::make_cole_vishkin_view(n));
  const auto by_function = fn.run_instance(ids_vec);

  const auto g = graph::make_cycle(n);
  const auto by_engine =
      local::run_views(g, graph::IdAssignment(ids_vec), algo::make_cole_vishkin_view(n));
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(by_function.outputs[v], by_engine.outputs[v]) << "v " << v;
    EXPECT_EQ(by_function.radii[v], by_engine.radii[v]) << "v " << v;
  }
}

TEST(RingViewFunction, ViewKeyExtraction) {
  const std::vector<std::uint64_t> ids = {10, 20, 30, 40, 50};
  const auto key = analysis::ring_view_key(ids, 0, 2);
  // [ccw_2, ccw_1, own, cw_1, cw_2]
  EXPECT_EQ(key, (std::vector<std::uint64_t>{40, 50, 10, 20, 30}));
  EXPECT_THROW(analysis::ring_view_key(ids, 0, 3), std::invalid_argument);
}

TEST(Lemma2, UniformAlgorithmsHaveNoViolation) {
  const std::size_t n = 16;
  support::Xoshiro256 rng(6);
  const auto ids = support::random_permutation(n, rng);
  const RingViewFunction cv(algo::make_cole_vishkin_view(n));
  EXPECT_FALSE(analysis::find_smoothness_violation(cv, ids).has_value());
}

TEST(Lemma2, LazyAlgorithmViolatesSmoothness) {
  const auto instance = test_instance();
  const RingViewFunction lazy(lazy_factory());
  const auto violation = analysis::find_smoothness_violation(lazy, instance);
  ASSERT_TRUE(violation.has_value());
  // The laggard is an offender.
  std::size_t laggard_pos = kN;
  for (std::size_t i = 0; i < kN; ++i) {
    if (instance[i] == kLaggard) laggard_pos = i;
  }
  ASSERT_NE(laggard_pos, kN);
  EXPECT_NE(std::find(violation->offenders.begin(), violation->offenders.end(), laggard_pos),
            violation->offenders.end());
  EXPECT_LT(violation->tau, kBigRadius);
  EXPECT_GT(instance[violation->x], instance[violation->y])
      << "x must carry the larger identifier";
}

TEST(Lemma2, ImprovedDominatesOnTheInstance) {
  const auto instance = test_instance();
  const RingViewFunction lazy(lazy_factory());
  const auto violation = analysis::find_smoothness_violation(lazy, instance);
  ASSERT_TRUE(violation.has_value());
  const Lemma2Improved improved(lazy, instance, *violation);

  const auto before = lazy.run_instance(instance);
  const auto after = improved.run_instance(instance);
  bool strictly_better_somewhere = false;
  for (std::size_t v = 0; v < kN; ++v) {
    EXPECT_LE(after.radii[v], before.radii[v]) << "v " << v;
    if (after.radii[v] < before.radii[v]) strictly_better_somewhere = true;
  }
  EXPECT_TRUE(strictly_better_somewhere);
  for (const std::size_t offender : violation->offenders) {
    EXPECT_EQ(after.radii[offender], violation->tau);
  }
}

TEST(Lemma2, ImprovedIsAValidFourColouringOnTheInstance) {
  const auto instance = test_instance();
  const RingViewFunction lazy(lazy_factory());
  const auto violation = analysis::find_smoothness_violation(lazy, instance);
  ASSERT_TRUE(violation.has_value());
  const Lemma2Improved improved(lazy, instance, *violation);
  const auto run = improved.run_instance(instance);
  const auto g = graph::make_cycle(kN);
  EXPECT_TRUE(algo::is_valid_colouring(g, run.outputs, 4));
}

TEST(Lemma2, ImprovedStaysValidWhenOutsideTheSliceChanges) {
  // The proof's key requirement: A' is valid on *every* instance. Stress
  // the interesting ones - the slice intact, everything else permuted.
  const auto instance = test_instance();
  const RingViewFunction lazy(lazy_factory());
  const auto violation = analysis::find_smoothness_violation(lazy, instance);
  ASSERT_TRUE(violation.has_value());
  const Lemma2Improved improved(lazy, instance, *violation);
  const auto g = graph::make_cycle(kN);

  const auto base_run = lazy.run_instance(instance);
  // Slice positions: from x's view start to y's view end.
  const std::size_t n = kN;
  const std::size_t a =
      ((violation->x + violation->k + 1) % n == violation->y) ? violation->x : violation->y;
  const std::size_t b = (a + violation->k + 1) % n;
  const std::size_t start = (a + n - base_run.radii[a]) % n;
  const std::size_t length =
      base_run.radii[a] + 1 + violation->k + 1 + base_run.radii[b];
  std::vector<bool> in_slice(n, false);
  for (std::size_t j = 0; j < length; ++j) in_slice[(start + j) % n] = true;

  support::Xoshiro256 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::uint64_t> mutated = instance;
    std::vector<std::size_t> outside;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_slice[i]) outside.push_back(i);
    }
    for (std::size_t i = outside.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.below(i));
      std::swap(mutated[outside[i - 1]], mutated[outside[j]]);
    }
    const auto run = improved.run_instance(mutated);
    EXPECT_TRUE(algo::is_valid_colouring(g, run.outputs, 4)) << "trial " << trial;
  }
}

TEST(Lemma2, ImprovedEqualsBaseOnUnrelatedInstances) {
  const auto instance = test_instance();
  const RingViewFunction lazy(lazy_factory());
  const auto violation = analysis::find_smoothness_violation(lazy, instance);
  ASSERT_TRUE(violation.has_value());
  const Lemma2Improved improved(lazy, instance, *violation);
  const auto g = graph::make_cycle(kN);

  support::Xoshiro256 rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    const auto other = support::random_permutation(kN, rng);
    const auto run_improved = improved.run_instance(other);
    EXPECT_TRUE(algo::is_valid_colouring(g, run_improved.outputs, 4)) << "trial " << trial;
  }
}

}  // namespace
