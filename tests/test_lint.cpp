// The determinism-contract linter, pinned three ways:
//  - every check fires on its fire-fixture with the exact expected
//    diagnostics, and stays silent on its clean-fixture (a regressed check
//    fails tier-1 here);
//  - the whole src/ tree lints clean through the same in-process path the
//    binary uses (the binary-level gate is the lint_src ctest entry);
//  - the avglocal_lint binary's CLI contract (exit codes, --list-checks,
//    compile-database discovery) holds.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "checks.hpp"
#include "compile_commands.hpp"
#include "lexer.hpp"

namespace {

using namespace avglocal::lint;
namespace fs = std::filesystem;

const char* const kFixtures = AVGLOCAL_LINT_FIXTURES;
const char* const kSrcDir = AVGLOCAL_SRC_DIR;
const char* const kLintBin = AVGLOCAL_LINT_BIN;

std::vector<Diagnostic> lint_fixture(const std::string& rel,
                                     const std::set<std::string>& enabled = {}) {
  return run_checks(lex_file(std::string(kFixtures) + "/" + rel), enabled);
}

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout only
};

RunResult run_binary(const std::string& args) {
  const std::string cmd = std::string(kLintBin) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  char buf[4096];
  while (pipe != nullptr && std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  if (pipe != nullptr) {
    const int status = pclose(pipe);
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return r;
}

std::vector<std::string> check_names(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> names;
  for (const Diagnostic& d : diags) names.push_back(d.check);
  return names;
}

// ------------------------------------------------------------------------
// Fixture pairs: one fires / does-not-fire pair per custom check.
// ------------------------------------------------------------------------

TEST(LintFixtures, RawEntropyFires) {
  const auto diags = lint_fixture("raw_entropy_fire.cpp");
  ASSERT_EQ(diags.size(), 5u) << "random_device, srand, time, rand, address cast";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "raw-entropy");
}

TEST(LintFixtures, RawEntropyCleanIsSilent) {
  // Comments, substring identifiers (rand_index, edge_time) and the
  // monotonic steady_clock must not fire.
  EXPECT_TRUE(lint_fixture("raw_entropy_clean.cpp").empty());
}

TEST(LintFixtures, UnorderedIterationFires) {
  const auto diags = lint_fixture("unordered_iteration_fire.cpp");
  ASSERT_EQ(diags.size(), 3u) << "range-for, .begin(), ->begin()";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "unordered-iteration");
}

TEST(LintFixtures, UnorderedLookupsStayLegal) {
  EXPECT_TRUE(lint_fixture("unordered_iteration_clean.cpp").empty());
}

TEST(LintFixtures, FloatAccumulationFiresInsideMerge) {
  const auto diags = lint_fixture("core/float_accumulation_fire.cpp");
  ASSERT_EQ(diags.size(), 2u) << "the double declaration and the 0.5 literal";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "float-accumulation");
}

TEST(LintFixtures, FloatOutsideMergeStaysLegal) {
  // finalize_mean() computes doubles next to an exact-integer merge/append
  // pair: only merge bodies are constrained.
  EXPECT_TRUE(lint_fixture("core/float_accumulation_clean.cpp").empty());
}

TEST(LintFixtures, HotPathAllocFires) {
  const auto diags = lint_fixture("hot_path_alloc_fire.cpp");
  ASSERT_EQ(diags.size(), 5u)
      << "push_back, new, delete, std::function, push_back inside a nested lambda";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "hot-path-alloc");
}

TEST(LintFixtures, WarmupAllocationStaysLegal) {
  // attach() resizes (unannotated warm-up); the AVGLOCAL_HOT drain/gather
  // bodies only touch pre-sized buffers.
  EXPECT_TRUE(lint_fixture("hot_path_alloc_clean.cpp").empty());
}

TEST(LintFixtures, ThreadIdFires) {
  const auto diags = lint_fixture("thread_id_fire.cpp");
  ASSERT_EQ(diags.size(), 3u) << "thread::id decl, get_id(), hash<thread::id>";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "thread-id-dependence");
}

TEST(LintFixtures, WorkerIndexAddressingStaysLegal) {
  EXPECT_TRUE(lint_fixture("thread_id_clean.cpp").empty());
}

TEST(LintFixtures, NarrowingIndexFires) {
  const auto diags = lint_fixture("narrowing_index_fire.cpp");
  ASSERT_EQ(diags.size(), 4u) << "Vertex, std::uint32_t, LocalVertex, vid32 targets";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "narrowing-index");
}

TEST(LintFixtures, CheckedNarrowingAndWideningStayLegal) {
  // checked_u32, widening casts, double casts and plain u32 declarations
  // must not fire; only a raw narrowing cast target does.
  EXPECT_TRUE(lint_fixture("narrowing_index_clean.cpp").empty());
}

TEST(LintFixtures, ArrivalOrderDependenceFires) {
  const auto diags = lint_fixture("core/arrival_order_fire.cpp");
  ASSERT_EQ(diags.size(), 4u) << "client_slot, arrival_rank, session_id, slot_index";
  for (const Diagnostic& d : diags) EXPECT_EQ(d.check, "arrival-order-dependence");
}

TEST(LintFixtures, UnitIdIndexedMergeStaysLegal) {
  // Merging by unit id is the sanctioned shape; connection bookkeeping
  // outside merge-like functions is none of this check's business.
  EXPECT_TRUE(lint_fixture("core/arrival_order_clean.cpp").empty());
}

TEST(LintFixtures, ArrivalOrderOutsideCoreStaysLegal) {
  // The check is scoped to core/ paths: the same tokens elsewhere are
  // silent (servers legitimately track slots; only result merges are
  // constrained).
  const SourceFile f = lex("src/support/probe.cpp",
                           "unsigned merge_totals(unsigned client_slot) {\n"
                           "  return client_slot;\n"
                           "}\n");
  EXPECT_TRUE(run_checks(f, {"arrival-order-dependence"}).empty());
}

TEST(LintFixtures, AllowCommentSuppressesBothPlacements) {
  EXPECT_TRUE(lint_fixture("suppression.cpp").empty());
}

TEST(LintFixtures, CheckFilterRestrictsToNamedCheck) {
  // With only thread-id-dependence enabled, the entropy fixture is silent.
  EXPECT_TRUE(lint_fixture("raw_entropy_fire.cpp", {"thread-id-dependence"}).empty());
  EXPECT_EQ(lint_fixture("raw_entropy_fire.cpp", {"raw-entropy"}).size(), 5u);
}

// ------------------------------------------------------------------------
// Suppression and lexer semantics.
// ------------------------------------------------------------------------

TEST(LintLexer, CommentsStringsAndPreprocessorAreInvisible) {
  const SourceFile f = lex("probe.cpp",
                           "// std::rand() in a comment\n"
                           "#define SEED std::rand()\n"
                           "const char* s = \"std::rand()\";\n");
  EXPECT_TRUE(run_checks(f, {}).empty());
}

TEST(LintLexer, WildcardAllowSuppressesEveryCheck) {
  const SourceFile f = lex("probe.cpp",
                           "unsigned f() {\n"
                           "  return rand();  // avglocal-lint: allow(*)\n"
                           "}\n");
  EXPECT_TRUE(run_checks(f, {}).empty());
}

TEST(LintLexer, AllowOnlySilencesTheNamedCheck) {
  const SourceFile f = lex("probe.cpp",
                           "unsigned f() {\n"
                           "  // avglocal-lint: allow(unordered-iteration)\n"
                           "  return rand();\n"
                           "}\n");
  const auto diags = run_checks(f, {});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "raw-entropy");
}

TEST(LintChecks, DiagnosticsCarryPositionsAndFormat) {
  const SourceFile f = lex("dir/probe.cpp", "int seed = rand();\n");
  const auto diags = run_checks(f, {});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[0].col, 12u);
  const std::string text = format(diags[0]);
  EXPECT_NE(text.find("dir/probe.cpp:1:12: warning:"), std::string::npos) << text;
  EXPECT_NE(text.find("[raw-entropy]"), std::string::npos) << text;
}

// ------------------------------------------------------------------------
// The real gate: all of src/ is clean under every check.
// ------------------------------------------------------------------------

TEST(LintSrcTree, EntireSourceTreeIsClean) {
  const std::vector<std::string> files = files_from_tree(kSrcDir);
  ASSERT_GT(files.size(), 80u) << "src/ discovery looks broken";
  std::string report;
  std::size_t count = 0;
  for (const std::string& path : files) {
    for (const Diagnostic& d : run_checks(lex_file(path), {})) {
      report += format(d) + "\n";
      ++count;
    }
  }
  EXPECT_EQ(count, 0u) << report;
}

// ------------------------------------------------------------------------
// Binary-level CLI contract.
// ------------------------------------------------------------------------

TEST(LintBinary, ListChecksNamesEveryCheck) {
  const RunResult r = run_binary("--list-checks");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_GE(all_checks().size(), 5u);
  for (const CheckInfo& c : all_checks()) {
    EXPECT_NE(r.output.find(c.name), std::string::npos) << c.name;
  }
}

TEST(LintBinary, ExitCodesEncodeTheVerdict) {
  const std::string fire = std::string(kFixtures) + "/raw_entropy_fire.cpp";
  const std::string clean = std::string(kFixtures) + "/raw_entropy_clean.cpp";
  EXPECT_EQ(run_binary(clean).exit_code, 0);
  const RunResult r = run_binary(fire);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[raw-entropy]"), std::string::npos) << r.output;
  EXPECT_EQ(run_binary("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_binary("--checks=no-such-check " + clean).exit_code, 2);
}

TEST(LintBinary, CompileDatabaseDiscoveryFiltersToProjectSources) {
  const fs::path tmp = fs::temp_directory_path() / "avglocal_lint_db_test";
  fs::create_directories(tmp / "src");
  const fs::path src_file = tmp / "src" / "probe.cpp";
  std::ofstream(src_file) << "unsigned f() { return rand(); }\n";
  const fs::path other = tmp / "vendored.cpp";
  std::ofstream(other) << "unsigned g() { return rand(); }\n";
  std::ofstream(tmp / "compile_commands.json")
      << "[{\"directory\": \"" << tmp.string() << "\", \"command\": \"c++ -c src/probe.cpp\", "
      << "\"file\": \"src/probe.cpp\"},\n"
      << " {\"directory\": \"" << tmp.string() << "\", \"command\": \"c++ -c vendored.cpp\", "
      << "\"file\": \"" << other.string() << "\"}]\n";

  const std::vector<std::string> files = files_from_compile_commands(tmp.string());
  ASSERT_EQ(files.size(), 1u) << "only TUs under src/ are linted";
  EXPECT_EQ(files[0], src_file.lexically_normal().string());

  // End to end through the binary: the database path fires on the probe.
  const RunResult r = run_binary("-p " + tmp.string());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("probe.cpp"), std::string::npos) << r.output;
  fs::remove_all(tmp);
}

TEST(LintChecks, FireFixturesFireOnlyTheirOwnCheck) {
  const std::pair<const char*, const char*> cases[] = {
      {"raw_entropy_fire.cpp", "raw-entropy"},
      {"unordered_iteration_fire.cpp", "unordered-iteration"},
      {"core/float_accumulation_fire.cpp", "float-accumulation"},
      {"hot_path_alloc_fire.cpp", "hot-path-alloc"},
      {"thread_id_fire.cpp", "thread-id-dependence"},
      {"narrowing_index_fire.cpp", "narrowing-index"},
      {"core/arrival_order_fire.cpp", "arrival-order-dependence"},
  };
  for (const auto& [fixture, check] : cases) {
    for (const std::string& name : check_names(lint_fixture(fixture))) {
      EXPECT_EQ(name, check) << fixture;
    }
  }
}

}  // namespace
