// Tests of the batched sweep subsystem: exactness of the geometry-replay
// engine against per-trial runs, bit-identical statistics against
// run_random_sweep, and bit-identical shard merge through the JSON artefact
// round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "algo/cole_vishkin.hpp"
#include "algo/largest_id.hpp"
#include "algo/mis_ring.hpp"
#include "core/batched_sweep.hpp"
#include "core/runner.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace avglocal;

std::vector<graph::IdAssignment> random_batch(std::size_t n, std::size_t trials,
                                              std::uint64_t seed) {
  std::vector<graph::IdAssignment> batch;
  batch.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(seed, t));
    batch.push_back(graph::IdAssignment::random(n, rng));
  }
  return batch;
}

/// Collects per-(trial, vertex) results of run_views_batched into dense
/// tables comparable against per-trial run_views calls.
struct Collected {
  std::vector<std::vector<std::int64_t>> outputs;  // [trial][vertex]
  std::vector<std::vector<std::size_t>> radii;
};

Collected collect_batched(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                          const local::ViewAlgorithmFactory& factory,
                          const local::ViewEngineOptions& options) {
  Collected out;
  out.outputs.assign(batch.size(), std::vector<std::int64_t>(g.vertex_count(), 0));
  out.radii.assign(batch.size(), std::vector<std::size_t>(g.vertex_count(), 0));
  local::run_views_batched(g, batch, factory, options,
                           [&](std::size_t, std::size_t trial, graph::Vertex v,
                               std::int64_t output, std::size_t radius) {
                             out.outputs[trial][v] = output;
                             out.radii[trial][v] = radius;
                           });
  return out;
}

void expect_batched_matches_per_trial(const graph::Graph& g,
                                      const local::ViewAlgorithmFactory& factory,
                                      local::ViewSemantics semantics, std::size_t trials) {
  const auto batch = random_batch(g.vertex_count(), trials, /*seed=*/911);
  local::ViewEngineOptions options;
  options.semantics = semantics;
  const Collected batched = collect_batched(g, batch, factory, options);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const local::RunResult run = local::run_views(g, batch[t], factory, options);
    EXPECT_EQ(run.outputs, batched.outputs[t]) << "trial " << t;
    EXPECT_EQ(run.radii, batched.radii[t]) << "trial " << t;
  }
}

TEST(RunViewsBatched, MatchesPerTrialRunsOnCycle) {
  const auto g = graph::make_cycle(33);
  expect_batched_matches_per_trial(g, algo::make_largest_id_view(),
                                   local::ViewSemantics::kInducedBall, 6);
  expect_batched_matches_per_trial(g, algo::make_largest_id_view(),
                                   local::ViewSemantics::kFloodingKnowledge, 6);
}

TEST(RunViewsBatched, MatchesPerTrialRunsOnIrregularGraphs) {
  support::Xoshiro256 rng(7);
  const auto tree = graph::make_random_tree(40, rng);
  expect_batched_matches_per_trial(tree, algo::make_largest_id_view(),
                                   local::ViewSemantics::kInducedBall, 5);
  const auto gnp = graph::make_gnp_connected(48, 0.12, rng);
  expect_batched_matches_per_trial(gnp, algo::make_largest_id_view(),
                                   local::ViewSemantics::kInducedBall, 5);
  expect_batched_matches_per_trial(gnp, algo::make_largest_id_view(),
                                   local::ViewSemantics::kFloodingKnowledge, 5);
}

TEST(RunViewsBatched, ColeVishkinUsesPortsAndStillMatches) {
  // cv3 walks the ring through the view's port table, so this pins the
  // replayed ports (not just ids and coverage) to the grower's.
  const std::size_t n = 64;
  const auto g = graph::make_cycle(n);
  expect_batched_matches_per_trial(g, algo::make_cole_vishkin_view(n),
                                   local::ViewSemantics::kInducedBall, 4);
}

/// Fingerprints the *entire* view (radius, ids, dist, every port slot
/// including unknown ones, coverage) at every radius until an id-derived
/// stopping radius. If a replayed view deviated from the grower's in any
/// field at any radius, per-trial and batched fingerprints would differ.
class ViewFingerprint final : public local::ViewAlgorithm {
 public:
  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    hash_ = mix(hash_, static_cast<std::uint64_t>(view.radius));
    for (std::size_t i = 0; i < view.size(); ++i) {
      hash_ = mix(hash_, view.ids[i]);
      hash_ = mix(hash_, static_cast<std::uint64_t>(view.dist[i]));
      for (const auto target : view.ports[i]) hash_ = mix(hash_, target);
    }
    hash_ = mix(hash_, view.covers_graph ? 1 : 2);
    const auto stop = static_cast<std::size_t>(view.root_id() % 5);
    if (view.covers_graph || static_cast<std::size_t>(view.radius) >= stop) {
      return static_cast<std::int64_t>(hash_ & 0x7fffffffffffffffULL);
    }
    return std::nullopt;
  }

  bool reset() noexcept override {
    hash_ = 0x9e3779b97f4a7c15ULL;
    return true;
  }

 private:
  static std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
  std::uint64_t hash_ = 0x9e3779b97f4a7c15ULL;
};

TEST(RunViewsBatched, ReplayedViewsAreBitIdenticalToGrowerViews) {
  support::Xoshiro256 rng(21);
  const auto factory = [] { return std::make_unique<ViewFingerprint>(); };
  for (const auto semantics :
       {local::ViewSemantics::kInducedBall, local::ViewSemantics::kFloodingKnowledge}) {
    const auto gnp = graph::make_gnp_connected(36, 0.15, rng);
    expect_batched_matches_per_trial(gnp, factory, semantics, 5);
  }
}

TEST(RunViewsBatched, RowGatherRegimeBoundaryIsBitExact) {
  // The engine switches between the transposed row-gather kernel and the
  // per-trial straggler gather at kRowGatherMinActive in-flight trials.
  // Batch sizes straddling (and exactly hitting) the threshold start on
  // either side of the boundary and cross it as trials finish; every one
  // of them must reproduce the per-trial engine bit for bit.
  const auto g = graph::make_cycle(21);
  for (const std::size_t trials :
       {local::kRowGatherMinActive - 1, local::kRowGatherMinActive,
        local::kRowGatherMinActive + 1, local::kRowGatherMinActive + 37}) {
    expect_batched_matches_per_trial(g, algo::make_largest_id_view(),
                                     local::ViewSemantics::kInducedBall, trials);
  }
}

TEST(RunViewsBatched, LayerJumpOnAndOffMatchPerTrialRuns) {
  // The min_radius layer-jump fuses BFS layers whose early-outs cannot
  // fire; jump on, jump off and the per-trial engine must agree exactly.
  // cv3 and mis-ring both set min_radius from an n-dependent schedule, so
  // they exercise multi-layer jumps; largest-id jumps never (min_radius 0).
  const std::size_t n = 48;
  const auto g = graph::make_cycle(n);
  const std::vector<std::pair<const char*, local::ViewAlgorithmFactory>> algos = {
      {"cv3", algo::make_cole_vishkin_view(n)},
      {"mis", algo::make_mis_ring_view(n)},
      {"largest-id", algo::make_largest_id_view()},
  };
  const auto batch = random_batch(n, 6, /*seed=*/417);
  for (const auto& [name, factory] : algos) {
    local::ViewEngineOptions jump_on;
    local::ViewEngineOptions jump_off;
    jump_off.layer_jump = false;
    const Collected with_jump = collect_batched(g, batch, factory, jump_on);
    const Collected without = collect_batched(g, batch, factory, jump_off);
    EXPECT_EQ(with_jump.outputs, without.outputs) << name;
    EXPECT_EQ(with_jump.radii, without.radii) << name;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const local::RunResult run = local::run_views(g, batch[t], factory, jump_on);
      EXPECT_EQ(run.outputs, with_jump.outputs[t]) << name << " trial " << t;
      EXPECT_EQ(run.radii, with_jump.radii[t]) << name << " trial " << t;
    }
  }
}

TEST(RunViewsBatched, PhaseStatsAccumulateOnSerialRuns) {
  // cv3 is not ids_only, so the batch is transposed and the lockstep path
  // runs: all four phase timers must have registered wall time.
  const std::size_t n = 40;
  const auto g = graph::make_cycle(n);
  const auto batch = random_batch(n, 8, /*seed=*/62);
  local::BatchPhaseStats stats;
  local::ViewEngineOptions options;
  options.phase_stats = &stats;
  collect_batched(g, batch, algo::make_cole_vishkin_view(n), options);
  EXPECT_GT(stats.transpose_sec, 0.0);
  EXPECT_GT(stats.grow_sec, 0.0);
  EXPECT_GT(stats.gather_sec, 0.0);
  EXPECT_GT(stats.eval_sec, 0.0);

  // ids_only algorithms stream assignments directly: no transpose phase.
  local::BatchPhaseStats seq_stats;
  options.phase_stats = &seq_stats;
  collect_batched(g, batch, algo::make_largest_id_view(), options);
  EXPECT_EQ(seq_stats.transpose_sec, 0.0);
  EXPECT_GT(seq_stats.grow_sec, 0.0);
  EXPECT_GT(seq_stats.eval_sec, 0.0);
}

TEST(RunViewsBatched, PooledSweepIsIdenticalToSerial) {
  const auto g = graph::make_cycle(64);
  const auto batch = random_batch(64, 5, /*seed=*/3);
  local::ViewEngineOptions serial;
  const Collected a = collect_batched(g, batch, algo::make_largest_id_view(), serial);
  support::ThreadPool pool(4);
  local::ViewEngineOptions pooled;
  pooled.pool = &pool;
  const Collected b = collect_batched(g, batch, algo::make_largest_id_view(), pooled);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.radii, b.radii);
}

TEST(BatchedSweep, AggregatesAreBitIdenticalToRandomSweep) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };

  core::SweepOptions per_trial;
  per_trial.trials = 12;
  per_trial.seed = 5;
  per_trial.threads = 1;
  const auto classic =
      core::run_random_sweep({16, 33}, graphs, algo::make_largest_id_view(), per_trial);

  core::BatchedSweepOptions batched;
  batched.trials = 12;
  batched.seed = 5;
  batched.threads = 1;
  const auto fast = core::run_batched_sweep({16, 33}, graphs, algo::make_largest_id_view(), batched);

  ASSERT_EQ(classic.size(), fast.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i].n, fast[i].n);
    EXPECT_EQ(classic[i].trials, fast[i].trials);
    // Same per-trial sums, same accumulation order, same divisions: the
    // doubles must be equal to the last bit, not merely close.
    EXPECT_EQ(classic[i].avg_mean, fast[i].avg_mean);
    EXPECT_EQ(classic[i].avg_sd, fast[i].avg_sd);
    EXPECT_EQ(classic[i].avg_worst, fast[i].avg_worst);
    EXPECT_EQ(classic[i].max_mean, fast[i].max_mean);
    EXPECT_EQ(classic[i].max_worst, fast[i].max_worst);
  }
}

TEST(BatchedSweep, IndependentOfThreadsAndBatchSize) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  core::BatchedSweepOptions base;
  base.trials = 10;
  base.seed = 9;
  base.threads = 1;
  base.node_profile = true;
  const auto reference =
      core::run_batched_sweep({24, 40}, graphs, algo::make_largest_id_view(), base);

  for (const std::size_t threads : {std::size_t{4}}) {
    for (const std::size_t batch_size : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      core::BatchedSweepOptions options = base;
      options.threads = threads;
      options.batch_size = batch_size;
      const auto points =
          core::run_batched_sweep({24, 40}, graphs, algo::make_largest_id_view(), options);
      EXPECT_EQ(points, reference) << "threads=" << threads << " batch=" << batch_size;
    }
  }
}

TEST(BatchedSweep, DistributionAndNodeMeasuresAreConsistent) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  core::BatchedSweepOptions options;
  options.trials = 8;
  options.seed = 2;
  options.node_profile = true;
  options.quantile_probs = {0.0, 0.5, 1.0};
  const auto points =
      core::run_batched_sweep({30}, graphs, algo::make_largest_id_view(), options);
  ASSERT_EQ(points.size(), 1u);
  const auto& p = points[0];

  EXPECT_EQ(p.radius.samples, 30u * 8u);
  // The distribution mean is the node- and ID-averaged radius, which must
  // equal the mean of per-run averages when every run has n samples.
  EXPECT_NEAR(p.radius.mean, p.avg_mean, 1e-12);
  EXPECT_EQ(p.radius.max, p.max_worst);
  ASSERT_EQ(p.radius.quantiles.size(), 3u);
  EXPECT_LE(p.radius.quantiles[0], p.radius.quantiles[1]);
  EXPECT_LE(p.radius.quantiles[1], p.radius.quantiles[2]);
  EXPECT_EQ(p.radius.quantiles[2], p.radius.max);

  ASSERT_EQ(p.node_mean.size(), 30u);
  double node_avg = 0.0;
  double worst = 0.0;
  double best = p.node_mean[0];
  for (double m : p.node_mean) {
    node_avg += m;
    worst = std::max(worst, m);
    best = std::min(best, m);
  }
  node_avg /= 30.0;
  EXPECT_NEAR(node_avg, p.avg_mean, 1e-12);
  EXPECT_EQ(worst, p.node_mean_max);
  EXPECT_EQ(best, p.node_mean_min);
  // The closure radius 15 is paid by the *leader*, which is a different
  // vertex in each run - that is the ordinary-node / worst-id distinction
  // these measures exist for. No fixed vertex leads every run here, so the
  // worst node mean sits strictly between the sweep average and the
  // worst-case radius.
  EXPECT_GT(p.node_mean_max, p.avg_mean);
  EXPECT_LT(p.node_mean_max, 15.0);
}

TEST(ShardPlan, PartitionsTrialsAcrossShards) {
  const auto plan = core::plan_shards(3, 10, 4);
  ASSERT_EQ(plan.size(), 4u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].point_begin, 0u);
    EXPECT_EQ(plan[i].point_end, 3u);
    EXPECT_EQ(plan[i].trial_begin, covered);
    covered = plan[i].trial_end;
  }
  EXPECT_EQ(covered, 10u);

  // More shards than trials: empty shards are dropped, one trial each.
  const auto tiny = core::plan_shards(1, 3, 8);
  ASSERT_EQ(tiny.size(), 3u);
  for (const auto& shard : tiny) EXPECT_EQ(shard.trial_end - shard.trial_begin, 1u);
}

TEST(Shards, JsonMergeIsBitIdenticalToMonolithicSweep) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const std::vector<std::size_t> ns = {12, 26};
  core::BatchedSweepOptions options;
  options.trials = 9;
  options.seed = 77;
  options.threads = 2;
  options.node_profile = true;

  const auto monolithic =
      core::run_batched_sweep(ns, graphs, algo::make_largest_id_view(), options);

  // A deliberately lopsided plan: one shard owns all of point 0 while
  // point 1 is split across two uneven trial ranges.
  const core::SweepPlanMeta meta = core::SweepPlanMeta::from_options(ns, options);
  const std::vector<core::SweepShard> plan = {
      {0, 1, 0, 9},  // point 0, all trials
      {1, 2, 0, 4},  // point 1, first trials
      {1, 2, 4, 9},  // point 1, rest
  };
  std::vector<std::string> artefacts;
  for (const auto& shard : plan) {
    core::ShardDocument doc;
    doc.meta = meta;
    doc.shard = shard;
    doc.points = core::run_sweep_shard(ns, graphs, algo::make_largest_id_view(), options, shard);
    artefacts.push_back(core::shard_to_json(doc));
  }

  std::vector<core::ShardDocument> parsed;
  // Merge must not depend on artefact order; feed them scrambled.
  parsed.push_back(core::parse_shard_json(artefacts[2]));
  parsed.push_back(core::parse_shard_json(artefacts[0]));
  parsed.push_back(core::parse_shard_json(artefacts[1]));
  const auto merged = core::merge_shards(std::move(parsed));

  // Bit-identical: every integer and every double, including histograms,
  // quantiles and node profiles.
  EXPECT_EQ(merged, monolithic);
}

TEST(Shards, PlannedShardsMergeBitIdenticallyToo) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const std::vector<std::size_t> ns = {18};
  core::BatchedSweepOptions options;
  options.trials = 7;
  options.seed = 13;
  options.threads = 1;

  const auto monolithic =
      core::run_batched_sweep(ns, graphs, algo::make_largest_id_view(), options);
  const core::SweepPlanMeta meta = core::SweepPlanMeta::from_options(ns, options);

  std::vector<core::ShardDocument> docs;
  for (const auto& shard : core::plan_shards(ns.size(), options.trials, 3)) {
    core::ShardDocument doc;
    doc.meta = meta;
    doc.shard = shard;
    doc.points = core::run_sweep_shard(ns, graphs, algo::make_largest_id_view(), options, shard);
    docs.push_back(core::parse_shard_json(core::shard_to_json(doc)));
  }
  EXPECT_EQ(core::merge_shards(std::move(docs)), monolithic);
}

TEST(BatchedSweep, ProviderParameterisesAlgorithmPerPoint) {
  // cv3's schedule radius depends on n: a multi-point sweep must build the
  // factory per point, not once from the first size.
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  core::BatchedSweepOptions options;
  options.trials = 5;
  options.seed = 3;
  options.threads = 1;
  const auto points = core::run_batched_sweep(
      {32, 128}, graphs, [](std::size_t n) { return algo::make_cole_vishkin_view(n); },
      options);
  ASSERT_EQ(points.size(), 2u);

  // Each point must equal a sweep of just that size with the matching
  // factory and the same global point index (hence the same trial seeds).
  for (std::size_t point = 0; point < 2; ++point) {
    const std::size_t n = point == 0 ? 32 : 128;
    const graph::Graph g = graphs(n);
    const core::PointAccumulator acc = core::accumulate_point(
        g, point, algo::make_cole_vishkin_view(n), options, 0, options.trials, nullptr);
    EXPECT_EQ(points[point], core::finalize_point(acc, options)) << "n=" << n;
  }
}

TEST(Shards, MergeRejectsMismatchedWorkloadLabels) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const std::vector<std::size_t> ns = {14};
  core::BatchedSweepOptions options;
  options.trials = 4;
  options.seed = 1;
  options.threads = 1;

  const auto make_doc = [&](const std::string& algorithm, const core::SweepShard& shard) {
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(ns, options);
    doc.meta.algorithm = algorithm;
    doc.meta.graph = "cycle";
    doc.shard = shard;
    doc.points = core::run_sweep_shard(ns, graphs, algo::make_largest_id_view(), options, shard);
    return core::parse_shard_json(core::shard_to_json(doc));
  };

  // The numeric plans agree; only the workload labels reveal that these
  // artefacts came from different algorithms.
  std::vector<core::ShardDocument> docs = {make_doc("largest-id", {0, 1, 0, 2}),
                                           make_doc("cv3", {0, 1, 2, 4})};
  EXPECT_THROW(core::merge_shards(std::move(docs)), std::logic_error);

  std::vector<core::ShardDocument> ok = {make_doc("largest-id", {0, 1, 0, 2}),
                                         make_doc("largest-id", {0, 1, 2, 4})};
  const auto merged = core::merge_shards(std::move(ok));
  EXPECT_EQ(merged.size(), 1u);
}

TEST(Shards, MergeRejectsIncompleteAndMismatchedPlans) {
  const auto graphs = [](std::size_t n) { return graph::make_cycle(n); };
  const std::vector<std::size_t> ns = {14};
  core::BatchedSweepOptions options;
  options.trials = 6;
  options.seed = 4;
  options.threads = 1;
  const core::SweepPlanMeta meta = core::SweepPlanMeta::from_options(ns, options);

  const auto run_shard = [&](const core::SweepShard& shard) {
    core::ShardDocument doc;
    doc.meta = meta;
    doc.shard = shard;
    doc.points = core::run_sweep_shard(ns, graphs, algo::make_largest_id_view(), options, shard);
    return doc;
  };

  // Missing trials [4, 6).
  {
    std::vector<core::ShardDocument> docs = {run_shard({0, 1, 0, 4})};
    EXPECT_THROW(core::merge_shards(std::move(docs)), std::logic_error);
  }
  // Overlapping trial ranges.
  {
    std::vector<core::ShardDocument> docs = {run_shard({0, 1, 0, 4}), run_shard({0, 1, 2, 6})};
    EXPECT_THROW(core::merge_shards(std::move(docs)), std::logic_error);
  }
  // Plans disagree on the seed.
  {
    std::vector<core::ShardDocument> docs = {run_shard({0, 1, 0, 6}), run_shard({0, 1, 0, 6})};
    docs[1].meta.seed ^= 1;
    EXPECT_THROW(core::merge_shards(std::move(docs)), std::logic_error);
  }
  // Not a shard artefact.
  EXPECT_THROW(core::parse_shard_json("{\"bench\":\"core\"}"), std::runtime_error);
}

}  // namespace
