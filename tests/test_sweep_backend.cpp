// Backend conformance suite for the engine-agnostic sweep layer.
//
// Every registered backend (ViewBackend, MessageBackend - reached through
// ResolvedScenario::make_backend, the same seam every tool uses) runs
// identical scenario specs through core::SweepDriver and must reproduce
// the pre-redesign golden corpus in tests/golden/ byte for byte - serial,
// pooled, and as appended sub-ranges through one persistent prepared
// point. On top of the corpus: capability probes, bit-identity of the
// pooled message sweep against the serial path, persistence of per-point
// state across adaptive-style rounds, and the shard-artefact v2/v3
// compatibility paths through the new driver (including the precise
// engine-mismatch merge error).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "core/shard.hpp"
#include "core/sweep_driver.hpp"
#include "graph/generators.hpp"
#include "support/thread_pool.hpp"

#ifndef AVGLOCAL_GOLDEN_DIR
#error "AVGLOCAL_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace avglocal;

using TrialRanges = std::vector<std::pair<std::size_t, std::size_t>>;

/// The golden corpus cases: two per backend, same specs as
/// tests/test_golden_artefacts.cpp.
struct ConformanceCase {
  const char* file;
  const char* algorithm;
  const char* family;
  std::size_t n;
};

const ConformanceCase kCases[] = {
    {"view-largest-id-cycle.json", "largest-id", "cycle", 12},
    {"view-greedy-gnp.json", "greedy", "gnp", 12},
    {"message-largest-id-cycle.json", "largest-id-msg", "cycle", 12},
    {"message-local3-cycle.json", "local3", "cycle", 12},
};

core::ScenarioSpec case_spec(const ConformanceCase& c) {
  core::ScenarioSpec spec;
  spec.family = graph::parse_family_spec(c.family);
  spec.algorithm = c.algorithm;
  spec.ns = {c.n};
  spec.seed = 2026;
  spec.schedule.max_trials = 4;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return {};
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string golden_bytes(const ConformanceCase& c) {
  return read_file(std::string(AVGLOCAL_GOLDEN_DIR) + "/" + c.file);
}

/// Renders the case's full-plan artefact through the driver: one prepared
/// point per plan point, trials run as the given sub-ranges and appended -
/// so a {0..4} range is one shot and {0..2, 2..4} exercises the persistent
/// state across rounds.
std::string render_driver_artefact(const ConformanceCase& c, support::ThreadPool* pool,
                                   const TrialRanges& ranges) {
  const core::ResolvedScenario resolved = core::resolve_scenario(case_spec(c));
  const core::BatchedSweepOptions options = resolved.sweep_options();
  const std::unique_ptr<core::SweepBackend> backend = resolved.make_backend();
  const core::SweepDriver driver(*backend, options, pool);
  EXPECT_EQ(backend->name(), resolved.spec.engine);

  core::ShardDocument doc;
  doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
  doc.meta.algorithm = resolved.spec.algorithm;
  doc.meta.graph = graph::family_spec_to_string(resolved.spec.family);
  doc.meta.scenario = core::scenario_to_json(resolved.spec);
  doc.meta.engine = resolved.spec.engine;
  doc.shard = {0, resolved.spec.ns.size(), 0, options.trials};
  for (std::size_t point = 0; point < resolved.spec.ns.size(); ++point) {
    const graph::Graph g = resolved.graphs(resolved.spec.ns[point]);
    core::SweepDriver::Point prepared = driver.prepare(g, point);
    core::PointAccumulator acc =
        driver.run_trials(prepared, ranges.front().first, ranges.front().second);
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      acc.append(driver.run_trials(prepared, ranges[i].first, ranges[i].second));
    }
    doc.points.push_back(std::move(acc));
  }
  return core::shard_to_json(doc);
}

// ------------------------------------------------- golden conformance ----

TEST(SweepBackendConformance, SerialDriverReproducesGoldenCorpus) {
  for (const ConformanceCase& c : kCases) {
    const std::string committed = golden_bytes(c);
    ASSERT_FALSE(committed.empty()) << c.file;
    EXPECT_EQ(render_driver_artefact(c, nullptr, {{0, 4}}), committed) << c.file;
  }
}

TEST(SweepBackendConformance, PooledDriverReproducesGoldenCorpus) {
  support::ThreadPool pool(3);
  for (const ConformanceCase& c : kCases) {
    const std::string committed = golden_bytes(c);
    ASSERT_FALSE(committed.empty()) << c.file;
    EXPECT_EQ(render_driver_artefact(c, &pool, {{0, 4}}), committed) << c.file;
  }
}

TEST(SweepBackendConformance, AppendedSubRangesReproduceGoldenCorpus) {
  // Two rounds through ONE prepared point (the message backend keeps its
  // engine alive in between) must leave no trace in the artefact bytes -
  // serial and pooled.
  support::ThreadPool pool(2);
  for (const ConformanceCase& c : kCases) {
    const std::string committed = golden_bytes(c);
    ASSERT_FALSE(committed.empty()) << c.file;
    EXPECT_EQ(render_driver_artefact(c, nullptr, {{0, 2}, {2, 4}}), committed) << c.file;
    EXPECT_EQ(render_driver_artefact(c, &pool, {{0, 3}, {3, 4}}), committed) << c.file;
  }
}

// ------------------------------------------------------- capabilities ----

TEST(SweepBackend, CapabilityProbes) {
  core::ScenarioSpec view_spec = case_spec(kCases[0]);
  const auto view = core::resolve_scenario(view_spec).make_backend();
  EXPECT_EQ(view->name(), "view");
  EXPECT_TRUE(view->supports_batching());
  EXPECT_EQ(view->parallel_granularity(), core::SweepBackend::Granularity::kVertices);

  core::ScenarioSpec message_spec = case_spec(kCases[2]);
  const auto message = core::resolve_scenario(message_spec).make_backend();
  EXPECT_EQ(message->name(), "message");
  EXPECT_TRUE(message->supports_batching());
  EXPECT_EQ(message->parallel_granularity(), core::SweepBackend::Granularity::kTrials);
}

// ------------------------------------------- parallel message sweeps ----

core::PointAccumulator run_message_point(support::ThreadPool* pool, std::size_t trials,
                                         std::size_t batch_size = 0) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {48};
  spec.seed = 404;
  spec.schedule.max_trials = trials;
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  core::BatchedSweepOptions options = resolved.sweep_options();
  options.batch_size = batch_size;
  const std::unique_ptr<core::SweepBackend> backend = resolved.make_backend();
  const core::SweepDriver driver(*backend, options, pool);
  const graph::Graph g = resolved.graphs(48);
  core::SweepDriver::Point prepared = driver.prepare(g, 0);
  return driver.run_trials(prepared, 0, trials);
}

TEST(SweepDriver, ParallelMessageSweepIsBitIdenticalToSerial) {
  // One arena-backed engine per pool worker lane over disjoint contiguous
  // trial ranges; the appended exact-integer partials must reproduce the
  // serial accumulator bit for bit, for every worker count and batch
  // width - including pools wider than the trial count.
  const core::PointAccumulator serial = run_message_point(nullptr, 11);
  for (const std::size_t workers : {2u, 3u, 5u, 16u}) {
    support::ThreadPool pool(workers);
    EXPECT_EQ(run_message_point(&pool, 11), serial) << "workers=" << workers;
    EXPECT_EQ(run_message_point(&pool, 11, /*batch_size=*/2), serial)
        << "workers=" << workers << " batch=2";
  }
}

TEST(SweepDriver, PersistentPointMatchesFreshPointAcrossRounds) {
  // Adaptive rounds reuse the prepared point (and its engines). Splitting
  // the range over one point - serial and pooled - must equal the one-shot
  // run of a fresh point.
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "local3";
  spec.ns = {30};
  spec.seed = 77;
  spec.schedule.max_trials = 9;
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  const core::BatchedSweepOptions options = resolved.sweep_options();
  const std::unique_ptr<core::SweepBackend> backend = resolved.make_backend();
  const graph::Graph g = resolved.graphs(30);

  const core::SweepDriver serial(*backend, options, nullptr);
  core::SweepDriver::Point fresh = serial.prepare(g, 0);
  const core::PointAccumulator reference = serial.run_trials(fresh, 0, 9);

  support::ThreadPool pool(3);
  for (support::ThreadPool* p : {static_cast<support::ThreadPool*>(nullptr), &pool}) {
    core::SweepDriver driver(*backend, options, p);
    core::SweepDriver::Point persistent = driver.prepare(g, 0);
    core::PointAccumulator acc = driver.run_trials(persistent, 0, 4);
    acc.append(driver.run_trials(persistent, 4, 6));
    acc.append(driver.run_trials(persistent, 6, 9));
    EXPECT_EQ(acc, reference) << (p == nullptr ? "serial" : "pooled");
  }
}

// ------------------------------- shard artefact v2/v3 compatibility ----

/// A frozen version-2 artefact (the pre-edge-measure format), as written by
/// the PR-3 library: the compatibility reader must keep accepting it
/// through the driver-era merge path.
const char* kV2Artefact =
    R"({"avglocal_shard":2,"seed":9,"trials":2,"semantics":"induced","ns":[4],)"
    R"("quantile_probs":[0.5],"node_profile":false,"algorithm":"largest-id",)"
    R"("graph":"cycle","scenario":"",)"
    R"("shard":{"point_begin":0,"point_end":1,"trial_begin":0,"trial_end":2},)"
    R"("points":[{"point_index":0,"n":4,"trial_begin":0,"trial_sum":[5,6],)"
    R"("trial_max":[2,2],"histogram":[1,4,3],"node_sum":[3,2,3,3]}]})";

TEST(ShardCompatibility, Version2ArtefactStillMergesThroughTheDriverEraReader) {
  std::vector<core::ShardDocument> docs;
  docs.push_back(core::parse_shard_json(kV2Artefact));
  EXPECT_EQ(docs.front().meta.engine, "view");
  const auto points = core::merge_shards(std::move(docs));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].trials, 2u);
  EXPECT_EQ(points[0].edges, 0u) << "v2 carries no edge partials";
  EXPECT_EQ(points[0].edge_avg_mean, 0.0);
}

TEST(ShardCompatibility, Version3ViewArtefactsFromTheDriverRoundTripAndMerge) {
  // Two trial-range shards produced by the new driver, serialised, parsed
  // back and merged: bit-identical to merging the committed full-plan
  // corpus artefact of the same scenario.
  const ConformanceCase& c = kCases[0];
  const core::ResolvedScenario resolved = core::resolve_scenario(case_spec(c));
  const core::BatchedSweepOptions options = resolved.sweep_options();
  const std::unique_ptr<core::SweepBackend> backend = resolved.make_backend();
  const core::SweepDriver driver(*backend, options, nullptr);

  std::vector<core::ShardDocument> docs;
  for (const auto& [begin, end] : TrialRanges{{0, 2}, {2, 4}}) {
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
    doc.meta.algorithm = resolved.spec.algorithm;
    doc.meta.graph = graph::family_spec_to_string(resolved.spec.family);
    doc.meta.scenario = core::scenario_to_json(resolved.spec);
    doc.meta.engine = resolved.spec.engine;
    doc.shard = {0, resolved.spec.ns.size(), begin, end};
    const graph::Graph g = resolved.graphs(resolved.spec.ns[0]);
    core::SweepDriver::Point prepared = driver.prepare(g, 0);
    doc.points.push_back(driver.run_trials(prepared, begin, end));
    docs.push_back(core::parse_shard_json(core::shard_to_json(doc)));
  }
  const auto merged = core::merge_shards(std::move(docs));

  const std::string committed = golden_bytes(c);
  ASSERT_FALSE(committed.empty()) << c.file;
  std::vector<core::ShardDocument> golden;
  golden.push_back(core::parse_shard_json(committed));
  EXPECT_EQ(merged, core::merge_shards(std::move(golden)));
}

TEST(ShardCompatibility, MergeNamesTheEnginesOnBackendMismatch) {
  // A view artefact and a message artefact of the "same" numeric plan:
  // the merge must refuse with an error that names both engines, not a
  // generic meta mismatch.
  const auto make_doc = [](const char* algorithm) {
    core::ScenarioSpec spec;
    spec.family = {"cycle", {}};
    spec.algorithm = algorithm;
    spec.ns = {12};
    spec.seed = 2;
    spec.schedule.max_trials = 4;
    spec.semantics = local::ViewSemantics::kFloodingKnowledge;
    const core::ResolvedScenario resolved = core::resolve_scenario(spec);
    const core::BatchedSweepOptions options = resolved.sweep_options();
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
    doc.meta.algorithm = "shared-label";
    doc.meta.scenario = "";
    doc.meta.engine = resolved.spec.engine;
    doc.shard = {0, 1, 0, 2};
    doc.points = core::run_scenario_shard(resolved, options, doc.shard);
    return core::parse_shard_json(core::shard_to_json(doc));
  };
  std::vector<core::ShardDocument> mixed;
  mixed.push_back(make_doc("largest-id"));
  mixed.push_back(make_doc("largest-id-msg"));
  mixed[1].shard.trial_begin = 2;
  try {
    core::merge_shards(std::move(mixed));
    FAIL() << "cross-engine merge must throw";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("different engines"), std::string::npos) << what;
    EXPECT_NE(what.find("view"), std::string::npos) << what;
    EXPECT_NE(what.find("message"), std::string::npos) << what;
  }
}

}  // namespace
