// Tests of the colouring stack: Cole-Vishkin primitives, the known-n
// schedule in both formulations, the unknown-n freeze/repair protocol, and
// ring MIS.
#include <gtest/gtest.h>

#include "algo/cole_vishkin.hpp"
#include "algo/colour_reduction.hpp"
#include "algo/local_colouring.hpp"
#include "algo/mis_ring.hpp"
#include "algo/validity.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(CvReduce, PreservesValidityOnRandomRings) {
  support::Xoshiro256 rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.below(30);
    auto colours = support::random_permutation(n, rng);
    for (int iter = 0; iter < 8; ++iter) {
      std::vector<std::uint64_t> next(n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NE(colours[i], colours[(i + 1) % n]);
        next[i] = algo::cv_reduce(colours[i], colours[(i + 1) % n]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NE(next[i], next[(i + 1) % n]) << "validity preserved";
      }
      colours = next;
    }
  }
}

TEST(CvReduce, ConvergesWithinSchedule) {
  support::Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8 + rng.below(200);
    auto colours = support::random_permutation(n, rng);
    const int t6 = algo::cv_iterations_to_six(support::bit_width_u64(n));
    for (int iter = 0; iter < t6; ++iter) {
      std::vector<std::uint64_t> next(n);
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = algo::cv_reduce(colours[i], colours[(i + 1) % n]);
      }
      colours = next;
    }
    for (std::uint64_t c : colours) EXPECT_LT(c, 6u);
  }
}

TEST(CvSchedule, GrowsLikeLogStar) {
  // The schedule length is log*-flat: huge jumps in n barely move it.
  const auto t4 = algo::cv_schedule_rounds(16);
  const auto t16 = algo::cv_schedule_rounds(1u << 16);
  EXPECT_LE(t16, t4 + 3);
  EXPECT_GE(algo::cv_schedule_rounds(4), 4u);  // at least 1 reduction + 3 eliminations
  EXPECT_LE(algo::cv_schedule_rounds(1u << 20), 10u);
}

TEST(CvColourRing, ProducesValidThreeColouring) {
  support::Xoshiro256 rng(3);
  for (const std::size_t n : {3u, 4u, 5u, 7u, 12u, 33u, 100u}) {
    const auto ids = support::random_permutation(n, rng);
    const int t6 = algo::cv_iterations_to_six(support::bit_width_u64(n));
    const auto colours = algo::cv_colour_ring(ids, t6);
    ASSERT_EQ(colours.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(colours[i], 3u);
      EXPECT_NE(colours[i], colours[(i + 1) % n]) << "n " << n << " i " << i;
    }
  }
}

TEST(CvColourSegment, MatchesRingSimulationInTheInterior) {
  // The segment simulator must reproduce the ring simulation wherever its
  // window has full context.
  support::Xoshiro256 rng(4);
  const std::size_t n = 64;
  const auto ids = support::random_permutation(n, rng);
  const int t6 = algo::cv_iterations_to_six(support::bit_width_u64(n));
  const auto ring_colours = algo::cv_colour_ring(ids, t6);

  for (std::size_t start = 0; start < n; start += 7) {
    const std::size_t window_len = static_cast<std::size_t>(t6) + 7 + 5;
    std::vector<std::uint64_t> window(window_len);
    for (std::size_t j = 0; j < window_len; ++j) window[j] = ids[(start + j) % n];
    const auto segment = algo::cv_colour_segment(window, t6);
    for (std::size_t j = segment.first; segment.has(j); ++j) {
      EXPECT_EQ(segment.at(j), ring_colours[(start + j) % n])
          << "window start " << start << " position " << j;
    }
  }
}

class ColeVishkinBothEngines : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColeVishkinBothEngines, ViewAndMessageAgree) {
  const std::size_t n = GetParam();
  support::Xoshiro256 rng(n);
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);

  const auto by_views = local::run_views(g, ids, algo::make_cole_vishkin_view(n));
  EXPECT_TRUE(algo::is_valid_colouring(g, by_views.outputs, 3));

  local::EngineOptions options;
  options.knowledge = local::Knowledge::kKnowsN;
  const auto by_messages =
      local::run_messages(g, ids, algo::make_cole_vishkin_messages(), options);
  EXPECT_TRUE(algo::is_valid_colouring(g, by_messages.outputs, 3));

  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(by_views.outputs[v], by_messages.outputs[v]) << "n " << n << " v " << v;
  }
  // All message radii equal the schedule length; view radii match when the
  // ball does not close first.
  const std::size_t T = algo::cv_schedule_rounds(n);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(by_messages.radii[v], T);
    EXPECT_EQ(by_views.radii[v], std::min(T, n / 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColeVishkinBothEngines,
                         ::testing::Values(4, 6, 8, 13, 16, 24, 40, 64, 100));

TEST(ColeVishkinView, WorksUnderFloodingSemantics) {
  const std::size_t n = 32;
  support::Xoshiro256 rng(12);
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);
  local::ViewEngineOptions options;
  options.semantics = local::ViewSemantics::kFloodingKnowledge;
  const auto run = local::run_views(g, ids, algo::make_cole_vishkin_view(n), options);
  EXPECT_TRUE(algo::is_valid_colouring(g, run.outputs, 3));
}

// ---- unknown-n freeze/repair colouring ------------------------------------

void expect_valid_unknown_n(const std::vector<std::uint64_t>& ids_vec) {
  const std::size_t n = ids_vec.size();
  const auto g = graph::make_cycle(n);
  const graph::IdAssignment ids{std::vector<std::uint64_t>(ids_vec)};
  local::EngineOptions options;
  options.max_rounds = 10'000;
  const auto run =
      local::run_messages(g, ids, algo::make_local_three_colouring(), options);
  ASSERT_TRUE(algo::is_valid_colouring(g, run.outputs, 3))
      << "n = " << n << " first id " << ids_vec[0];
}

TEST(LocalColouring, ExhaustiveTinyRings) {
  // All cyclic arrangements for n = 3..6: the freeze/repair protocol must
  // never emit an invalid colouring.
  for (std::size_t n = 3; n <= 6; ++n) {
    std::vector<std::uint64_t> rest(n - 1);
    for (std::size_t i = 0; i < n - 1; ++i) rest[i] = i + 1;
    do {
      std::vector<std::uint64_t> ids(n);
      ids[0] = n;
      std::copy(rest.begin(), rest.end(), ids.begin() + 1);
      expect_valid_unknown_n(ids);
    } while (std::next_permutation(rest.begin(), rest.end()));
  }
}

class LocalColouringRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LocalColouringRandom, ValidOnRandomRings) {
  const auto [n, seed] = GetParam();
  support::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1000 + n);
  expect_valid_unknown_n(support::random_permutation(n, rng));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalColouringRandom,
                         ::testing::Combine(::testing::Values(8, 16, 32, 64, 128, 256, 512),
                                            ::testing::Values(1, 2, 3, 4, 5)));

TEST(LocalColouring, AdversarialIdPatterns) {
  // Monotone and organ-pipe arrangements exercise long freeze boundaries.
  for (const std::size_t n : {16u, 64u, 256u}) {
    std::vector<std::uint64_t> sorted(n);
    for (std::size_t i = 0; i < n; ++i) sorted[i] = i + 1;
    expect_valid_unknown_n(sorted);

    std::vector<std::uint64_t> reversed(sorted.rbegin(), sorted.rend());
    expect_valid_unknown_n(reversed);

    std::vector<std::uint64_t> organ_pipe;
    for (std::size_t i = 1; i <= n; i += 2) organ_pipe.push_back(i);
    for (std::size_t i = n - (n % 2 ? 1 : 0); i >= 2; i -= 2) organ_pipe.push_back(i);
    if (organ_pipe.size() == n) expect_valid_unknown_n(organ_pipe);
  }
}

TEST(LocalColouring, RoundsStayLogStarFlat) {
  // The average output round must stay bounded by a small constant times
  // the known-n schedule (log*-flat), across two orders of magnitude.
  support::Xoshiro256 rng(31);
  for (const std::size_t n : {32u, 256u, 2048u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    local::EngineOptions options;
    options.max_rounds = 10'000;
    const auto run =
        local::run_messages(g, ids, algo::make_local_three_colouring(), options);
    EXPECT_TRUE(algo::is_valid_colouring(g, run.outputs, 3));
    EXPECT_LE(run.max_radius(), 12 * algo::cv_schedule_rounds(n))
        << "n = " << n << " took " << run.max_radius() << " rounds";
  }
}

// ---- MIS -------------------------------------------------------------------

class MisOnRings : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(MisOnRings, ValidMaximalIndependentSet) {
  const auto [n, seed] = GetParam();
  support::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7 + n);
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);
  const auto run = local::run_views(g, ids, algo::make_mis_ring_view(n));
  EXPECT_TRUE(algo::is_maximal_independent_set(g, run.outputs))
      << "n " << n << " seed " << seed;
  // Uniform radius: min(T+2, closure).
  const std::size_t expected = std::min(algo::cv_schedule_rounds(n) + 2, n / 2);
  for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(run.radii[v], expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MisOnRings,
                         ::testing::Combine(::testing::Values(3, 4, 5, 8, 13, 21, 40, 80),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
