// Verifies the flat-memory claims of the message engine with a real
// allocation counter: after a short warm-up in which the arena and inbox
// grow to their high-water marks, the engine's round loop must perform
// zero heap allocations. Also unit-tests the MessageArena itself.
//
// This binary installs the allocation-counting global operator new/delete;
// it must stay its own test executable.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/flood_probe.hpp"
#include "local/message_arena.hpp"
#include "support/alloc_hook.hpp"
#include "support/rng.hpp"

AVGLOCAL_DEFINE_ALLOC_HOOK();

namespace {

using namespace avglocal;
using local::AllocSampler;
using local::FloodRelay;

TEST(IdAssignmentAlloc, RandomUsesTrustedValidationPath) {
  // The sweep hot loop: IdAssignment::random is a permutation by
  // construction, so it must not pay the public constructor's
  // sort-and-check (which costs O(n log n) plus a second vector per trial).
  // Pin the allocation count: exactly one (the id vector itself). Debug
  // builds assert distinctness through a sorted copy, so the pin only holds
  // with asserts compiled out.
  support::Xoshiro256 rng(7);
  {  // warm up: gtest bookkeeping and the rng stream must not count
    const auto ids = graph::IdAssignment::random(4096, rng);
    ASSERT_EQ(ids.size(), 4096u);
  }
#ifdef NDEBUG
  const auto before = support::alloc_counts();
  const auto ids = graph::IdAssignment::random(4096, rng);
  const auto after = support::alloc_counts();
  EXPECT_EQ(ids.size(), 4096u);
  EXPECT_EQ(after.allocations - before.allocations, 1u)
      << "random id assignments must allocate the id vector and nothing else";
  EXPECT_GE(after.bytes - before.bytes, 4096u * sizeof(std::uint64_t));
#else
  GTEST_SKIP() << "debug builds re-validate trusted ids (and may allocate doing so)";
#endif
}

TEST(AllocHook, CountsAllocations) {
  const auto before = support::alloc_counts();
  {
    std::vector<std::uint64_t> v(1024);
    ASSERT_EQ(v.size(), 1024u);
  }
  const auto after = support::alloc_counts();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GE(after.bytes - before.bytes, 1024u * sizeof(std::uint64_t));
}

TEST(AllocHook, ConcurrentCountsAreExact) {
  // The "allocs_per_round_after_warmup == 0" gates read these counters
  // around parallel sweeps, so concurrent ticks from every worker lane
  // must lose no updates. Hammer the hook from several threads and check
  // the deltas: any dropped increment shows up as a shortfall. (Lower
  // bounds, not equality - gtest and the thread runtime may allocate
  // concurrently, which only pushes the counters higher.)
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAllocsPerThread = 2000;
  constexpr std::size_t kBytesPerAlloc = 64;

  const auto before = support::alloc_counts();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        // The escaping store keeps -O2 from eliding the new/delete pair.
        volatile std::uintptr_t sink = 0;
        for (std::size_t i = 0; i < kAllocsPerThread; ++i) {
          auto* p = new std::array<std::byte, kBytesPerAlloc>();
          sink = reinterpret_cast<std::uintptr_t>(p);  // avglocal-lint: allow(raw-entropy)
          delete p;
        }
        (void)sink;
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto after = support::alloc_counts();
  EXPECT_GE(after.allocations - before.allocations, kThreads * kAllocsPerThread)
      << "lost increments under concurrent allocation";
  EXPECT_GE(after.bytes - before.bytes, kThreads * kAllocsPerThread * kBytesPerAlloc);
}

TEST(MessageEngineAlloc, SteadyStateRoundsAreAllocationFree) {
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kWarmupRounds = 3;
  const auto g = graph::make_cycle(64);
  const auto ids = graph::IdAssignment::identity(64);

  AllocSampler sampler(kRounds);
  local::EngineOptions options;
  options.trace = &sampler;
  const auto run = local::run_messages(
      g, ids, [] { return std::make_unique<FloodRelay>(std::size_t{kRounds}); }, options);
  EXPECT_EQ(run.rounds, kRounds);

  const auto& samples = sampler.samples();
  ASSERT_GT(samples.size(), kWarmupRounds + 1);
  for (std::size_t i = kWarmupRounds; i + 1 < samples.size(); ++i) {
    EXPECT_EQ(samples[i + 1].allocations - samples[i].allocations, 0u)
        << "round " << i + 1 << " allocated";
    EXPECT_EQ(samples[i + 1].bytes - samples[i].bytes, 0u) << "round " << i + 1;
  }
}

// Same claim on a topology with degree spread (star: hub degree n-1), so
// the inbox high-water mark is exercised by the hub every round.
TEST(MessageEngineAlloc, SteadyStateOnStar) {
  constexpr std::size_t kRounds = 30;
  const auto g = graph::make_star(33);
  const auto ids = graph::IdAssignment::identity(33);

  AllocSampler sampler(kRounds);
  local::EngineOptions options;
  options.trace = &sampler;
  local::run_messages(g, ids, [] { return std::make_unique<FloodRelay>(std::size_t{kRounds}); }, options);

  const auto& samples = sampler.samples();
  ASSERT_GT(samples.size(), 4u);
  for (std::size_t i = 3; i + 1 < samples.size(); ++i) {
    EXPECT_EQ(samples[i + 1].allocations - samples[i].allocations, 0u)
        << "round " << i + 1 << " allocated";
  }
}

TEST(MessageArena, PushHasPayloadRoundTrip) {
  local::MessageArena arena;
  arena.attach(10);
  const std::array<std::uint64_t, 3> words{7, 8, 9};
  EXPECT_FALSE(arena.has(4));
  EXPECT_TRUE(arena.push(4, words));
  EXPECT_TRUE(arena.has(4));
  const auto payload = arena.payload(4);
  ASSERT_EQ(payload.size(), 3u);
  EXPECT_EQ(payload[0], 7u);
  EXPECT_EQ(payload[2], 9u);
  EXPECT_EQ(arena.message_count(), 1u);
  EXPECT_EQ(arena.word_count(), 3u);
}

TEST(MessageArena, SecondPushOnSameArcIsRejected) {
  local::MessageArena arena;
  arena.attach(4);
  const std::array<std::uint64_t, 1> words{1};
  EXPECT_TRUE(arena.push(2, words));
  EXPECT_FALSE(arena.push(2, words)) << "one message per arc per round";
  EXPECT_EQ(arena.message_count(), 1u);
}

TEST(MessageArena, BeginRoundForgetsMessagesAndKeepsGoing) {
  local::MessageArena arena;
  arena.attach(128);
  const std::array<std::uint64_t, 2> words{5, 6};
  for (std::size_t arc = 0; arc < 128; ++arc) EXPECT_TRUE(arena.push(arc, words));
  arena.begin_round();
  EXPECT_EQ(arena.message_count(), 0u);
  EXPECT_EQ(arena.word_count(), 0u);
  for (std::size_t arc = 0; arc < 128; ++arc) {
    EXPECT_FALSE(arena.has(arc));
    EXPECT_TRUE(arena.push(arc, words));
  }
}

TEST(MessageArena, EmptyPayloadIsAMessage) {
  local::MessageArena arena;
  arena.attach(2);
  EXPECT_TRUE(arena.push(1, {}));
  EXPECT_TRUE(arena.has(1));
  EXPECT_EQ(arena.payload(1).size(), 0u);
  EXPECT_EQ(arena.message_count(), 1u);
}

}  // namespace
