// Tests of the scenario layer: the graph-family and algorithm registries,
// declarative spec resolution and canonicalisation, the scenario JSON
// round-trip, the adaptive trial schedule (stops early on low variance,
// hits the cap on high variance, always bit-identical to the fixed sweep of
// the stopped count), and workload rejection on shard merges.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/batched_sweep.hpp"
#include "core/scenario.hpp"
#include "core/shard.hpp"
#include "graph/family_registry.hpp"
#include "graph/properties.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

// ------------------------------------------------------ family registry ----

TEST(FamilyRegistry, CoversEveryGeneratorAndBuildsConnectedGraphs) {
  const auto& registry = graph::FamilyRegistry::global();
  const std::vector<std::string> names = registry.names();
  // Every generator in generators.hpp, reachable by name.
  for (const char* expected : {"cycle", "path", "complete", "star", "grid", "torus",
                               "kary-tree", "random-tree", "gnp", "random-regular"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing family " << expected;
  }
  EXPECT_EQ(names.size(), 10u);

  for (const std::string& name : names) {
    const graph::FamilySpec spec{name, {}};
    const std::size_t realised = registry.realised_size(spec, 20);
    support::Xoshiro256 rng(7);
    const graph::Graph g = registry.build(spec, 20, rng);
    EXPECT_EQ(g.vertex_count(), realised) << name;
    EXPECT_TRUE(graph::is_connected(g)) << name;
    // Realised sizes are exact fixed points: requesting a realised size
    // realises it unchanged, which is what lets resolved scenarios satisfy
    // the engine's vertex_count() == n contract.
    EXPECT_EQ(registry.realised_size(spec, realised), realised) << name;
  }
}

TEST(FamilyRegistry, RealisedSizesRespectFamilyConstraints) {
  const auto& registry = graph::FamilyRegistry::global();
  // A torus snaps to the nearest square with side >= 3.
  EXPECT_EQ(registry.realised_size({"torus", {}}, 250), 256u);
  EXPECT_EQ(registry.realised_size({"torus", {}}, 2), 9u);
  // A complete binary tree snaps up to the next full level.
  EXPECT_EQ(registry.realised_size({"kary-tree", {}}, 8), 15u);
  EXPECT_EQ(registry.realised_size({"kary-tree", {{"arity", 3}}}, 5), 13u);
  // random-regular bumps n so n*d is even and d < n.
  EXPECT_EQ(registry.realised_size({"random-regular", {{"degree", 3}}}, 7), 8u);
  EXPECT_EQ(registry.realised_size({"random-regular", {{"degree", 4}}}, 2), 5u);
}

TEST(FamilyRegistry, RandomisedFamiliesAreDeterministicPerStream) {
  const auto& registry = graph::FamilyRegistry::global();
  for (const std::string name : {"random-tree", "gnp", "random-regular"}) {
    support::Xoshiro256 a(11);
    support::Xoshiro256 b(11);
    const graph::Graph ga = registry.build({name, {}}, 24, a);
    const graph::Graph gb = registry.build({name, {}}, 24, b);
    ASSERT_EQ(ga.vertex_count(), gb.vertex_count()) << name;
    for (graph::Vertex v = 0; v < ga.vertex_count(); ++v) {
      ASSERT_EQ(ga.degree(v), gb.degree(v)) << name << " vertex " << v;
    }
  }
}

TEST(FamilyRegistry, UnknownNamesAndParamsThrowWithKnownLists) {
  const auto& registry = graph::FamilyRegistry::global();
  try {
    registry.at("moebius");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("cycle"), std::string::npos)
        << "error should list the known families";
  }
  support::Xoshiro256 rng(1);
  EXPECT_THROW(registry.build({"gnp", {{"p", 0.5}}}, 16, rng), std::invalid_argument);
  EXPECT_THROW(registry.build({"cycle", {{"anything", 1.0}}}, 16, rng), std::invalid_argument);
  EXPECT_THROW(
      registry.build({"gnp", {{"avg-degree", 2.0}, {"avg-degree", 3.0}}}, 16, rng),
      std::invalid_argument);
  // Count-like parameters must be positive integers.
  EXPECT_THROW(registry.realised_size({"random-regular", {{"degree", 2.5}}}, 16),
               std::invalid_argument);
}

TEST(FamilySpec, ParsesAndRendersCanonicalStrings) {
  const graph::FamilySpec plain = graph::parse_family_spec("torus");
  EXPECT_EQ(plain.family, "torus");
  EXPECT_TRUE(plain.params.empty());

  const graph::FamilySpec with_params = graph::parse_family_spec("gnp:avg-degree=6.5");
  EXPECT_EQ(with_params.family, "gnp");
  ASSERT_EQ(with_params.params.size(), 1u);
  EXPECT_EQ(with_params.params[0].first, "avg-degree");
  EXPECT_DOUBLE_EQ(with_params.params[0].second, 6.5);
  EXPECT_EQ(graph::family_spec_to_string(with_params), "gnp:avg-degree=6.5");

  EXPECT_THROW(graph::parse_family_spec(""), std::invalid_argument);
  EXPECT_THROW(graph::parse_family_spec("gnp:avg-degree"), std::invalid_argument);
  EXPECT_THROW(graph::parse_family_spec("gnp:avg-degree=abc"), std::invalid_argument);
}

// --------------------------------------------------- algorithm registry ----

TEST(AlgorithmRegistry, CoversViewAndMessageAlgorithms) {
  const auto& registry = algo::AlgorithmRegistry::global();
  const auto view_names = registry.names(algo::AlgorithmKind::kView);
  for (const char* expected : {"largest-id", "largest-id-ua", "cv3", "mis", "greedy"}) {
    EXPECT_NE(std::find(view_names.begin(), view_names.end(), expected), view_names.end())
        << "missing view algorithm " << expected;
  }
  const auto message_names = registry.names(algo::AlgorithmKind::kMessage);
  for (const char* expected : {"local3", "largest-id-msg", "cv3-msg", "greedy-msg"}) {
    EXPECT_NE(std::find(message_names.begin(), message_names.end(), expected),
              message_names.end())
        << "missing message algorithm " << expected;
  }
  EXPECT_THROW(registry.at("quantum"), std::invalid_argument);
}

TEST(AlgorithmRegistry, ProbesViewCapabilities) {
  const auto& registry = algo::AlgorithmRegistry::global();
  // largest-id takes the sequential ids-only fast path and can skip radius 0.
  const auto largest = algo::AlgorithmRegistry::probe(registry.at("largest-id"), 64);
  EXPECT_TRUE(largest.ids_only_view);
  EXPECT_EQ(largest.min_radius, 1u);
  // cv3 reads ports (lockstep mode) and waits for its schedule radius.
  const auto cv3 = algo::AlgorithmRegistry::probe(registry.at("cv3"), 64);
  EXPECT_FALSE(cv3.ids_only_view);
  EXPECT_GT(cv3.min_radius, 0u);
  // Capabilities are a view-engine concept.
  EXPECT_THROW(algo::AlgorithmRegistry::probe(registry.at("local3"), 64),
               std::invalid_argument);
}

TEST(AlgorithmRegistry, ValidatorsJudgeOutputs) {
  const auto& registry = algo::AlgorithmRegistry::global();
  const algo::AlgorithmInfo& info = registry.at("largest-id");
  support::Xoshiro256 rng(3);
  const graph::Graph g = graph::FamilyRegistry::global().build({"cycle", {}}, 5, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(5);
  std::vector<std::int64_t> outputs = {0, 0, 0, 0, 1};  // vertex 4 holds id 5
  EXPECT_TRUE(info.validate(g, ids, outputs));
  outputs[0] = 1;
  EXPECT_FALSE(info.validate(g, ids, outputs));
}

// -------------------------------------------------- resolution + canon ----

TEST(Scenario, ResolveCanonicalisesParamsAndSizes) {
  core::ScenarioSpec spec;
  spec.family = {"random-regular", {}};
  spec.algorithm = "largest-id";
  spec.ns = {7, 8, 9};  // 7 and 8 both realise as 8 (n*d must be even)
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  ASSERT_EQ(resolved.spec.family.params.size(), 1u);
  EXPECT_EQ(resolved.spec.family.params[0].first, "degree");
  EXPECT_DOUBLE_EQ(resolved.spec.family.params[0].second, 3.0);
  EXPECT_EQ(resolved.spec.ns, (std::vector<std::size_t>{8, 10}));

  // The factories respect the engine contract for every point.
  for (const std::size_t n : resolved.spec.ns) {
    EXPECT_EQ(resolved.graphs(n).vertex_count(), n);
  }
}

TEST(Scenario, ResolveRejectsBadWorkloadsBeforeAnyWork) {
  core::ScenarioSpec spec;
  spec.family = {"nosuch", {}};
  EXPECT_THROW(core::resolve_scenario(spec), std::invalid_argument);

  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.schedule.target_half_width = 0.5;
  spec.schedule.min_trials = 1;  // no variance estimate from one trial
  EXPECT_THROW(core::resolve_scenario(spec), std::invalid_argument);

  // The cap must leave room for a variance estimate too: one trial's sd of
  // 0 would report instant convergence from a zero-width interval.
  spec.schedule.min_trials = 16;
  spec.schedule.max_trials = 1;
  EXPECT_THROW(core::resolve_scenario(spec), std::invalid_argument);
}

TEST(Scenario, ResolveRoutesAlgorithmsToTheirEngine) {
  // Message algorithms used to be rejected here; they now resolve to the
  // message-engine path, with the canonical spec naming the engine (and
  // pinning the semantics field, which the message engine has no use for).
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {16};
  const core::ResolvedScenario message = core::resolve_scenario(spec);
  EXPECT_TRUE(message.is_message());
  EXPECT_FALSE(static_cast<bool>(message.algorithms));
  EXPECT_EQ(message.spec.engine, "message");
  EXPECT_EQ(message.spec.semantics, local::ViewSemantics::kFloodingKnowledge);

  spec.algorithm = "largest-id";
  const core::ResolvedScenario view = core::resolve_scenario(spec);
  EXPECT_FALSE(view.is_message());
  EXPECT_TRUE(static_cast<bool>(view.algorithms));
  EXPECT_EQ(view.spec.engine, "view");
}

TEST(Scenario, ResolveRejectsEngineMismatchesPrecisely) {
  // The combinations that remain unsupported fail at validation time with
  // an error naming both sides, never deep inside a sweep.
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.ns = {16};

  spec.algorithm = "largest-id-msg";
  spec.engine = "view";
  try {
    core::resolve_scenario(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("largest-id-msg"), std::string::npos) << what;
    EXPECT_NE(what.find("message"), std::string::npos) << what;
  }

  spec.algorithm = "largest-id";
  spec.engine = "message";
  EXPECT_THROW(core::resolve_scenario(spec), std::invalid_argument);

  spec.engine = "carrier-pigeon";
  EXPECT_THROW(core::resolve_scenario(spec), std::invalid_argument);
}

TEST(Scenario, JsonRoundTripsCanonically) {
  core::ScenarioSpec spec;
  spec.family = {"gnp", {{"avg-degree", 6.0}}};
  spec.algorithm = "greedy";
  spec.ns = {32, 64};
  spec.semantics = local::ViewSemantics::kFloodingKnowledge;
  spec.seed = 1234567890123ULL;
  spec.schedule.max_trials = 48;
  spec.schedule.min_trials = 8;
  spec.schedule.batch = 12;
  spec.schedule.target_half_width = 0.25;
  spec.node_profile = true;
  const core::ScenarioSpec canonical = core::resolve_scenario(spec).spec;

  const std::string text = core::scenario_to_json(canonical);
  const core::ScenarioSpec parsed = core::scenario_from_json(text);
  EXPECT_EQ(parsed, canonical);
  // Serialisation is canonical: re-emitting the parsed spec reproduces the
  // exact byte sequence (what shard merges compare).
  EXPECT_EQ(core::scenario_to_json(parsed), text);
}

// ---------------------------------------------------- adaptive schedule ----

TEST(Scenario, AdaptiveStopsEarlyOnLowVarianceScenario) {
  // cv3 outputs at the same schedule radius in every trial, so the
  // per-trial average is constant, the sample sd is 0, and the first
  // convergence check passes: min_trials is the stopping count.
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "cv3";
  spec.ns = {64};
  spec.seed = 5;
  spec.schedule.max_trials = 40;
  spec.schedule.min_trials = 4;
  spec.schedule.batch = 8;
  spec.schedule.target_half_width = 0.5;

  core::ScenarioExecution execution;
  execution.threads = 1;
  const core::ScenarioResult result = core::run_scenario(spec, execution);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(result.points[0].converged);
  EXPECT_EQ(result.points[0].point.trials, 4u);
  EXPECT_LE(result.points[0].half_width, 0.5);
}

TEST(Scenario, AdaptiveHitsTheCapOnHighVarianceScenario) {
  // largest-id's per-trial average varies with the permutation, and the
  // target is unreachably tight: the schedule must spend the whole cap and
  // report non-convergence.
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.ns = {64};
  spec.seed = 5;
  spec.schedule.max_trials = 12;
  spec.schedule.min_trials = 4;
  spec.schedule.batch = 3;
  spec.schedule.target_half_width = 1e-9;

  core::ScenarioExecution execution;
  execution.threads = 1;
  const core::ScenarioResult result = core::run_scenario(spec, execution);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_FALSE(result.points[0].converged);
  EXPECT_EQ(result.points[0].point.trials, 12u);
  EXPECT_GT(result.points[0].half_width, 1e-9);
}

TEST(Scenario, AdaptiveRunIsBitIdenticalToFixedRunOfStoppedCount) {
  // Adaptivity decides how many trials run, never what any trial computes:
  // the incremental accumulators must reproduce the monolithic fixed sweep
  // of the same total bit for bit, for both stopping modes.
  const auto fixed_points = [](const core::ScenarioSpec& spec, std::size_t trials) {
    core::ScenarioSpec fixed = spec;
    fixed.schedule = core::TrialSchedule{};
    fixed.schedule.max_trials = trials;
    core::ScenarioExecution execution;
    execution.threads = 1;
    return core::run_scenario(fixed, execution).points;
  };

  for (const double target : {0.08, 1e-9}) {
    core::ScenarioSpec spec;
    spec.family = {"cycle", {}};
    spec.algorithm = "largest-id";
    spec.ns = {48};
    spec.seed = 21;
    spec.schedule.max_trials = 20;
    spec.schedule.min_trials = 4;
    spec.schedule.batch = 5;
    spec.schedule.target_half_width = target;

    core::ScenarioExecution execution;
    execution.threads = 1;
    const core::ScenarioResult adaptive = core::run_scenario(spec, execution);
    ASSERT_EQ(adaptive.points.size(), 1u);
    const auto fixed = fixed_points(spec, adaptive.points[0].point.trials);
    ASSERT_EQ(fixed.size(), 1u);
    EXPECT_EQ(adaptive.points[0].point, fixed[0].point) << "target " << target;
  }
}

// -------------------------------------------------- workload rejection ----

TEST(Scenario, MergeRejectsArtefactsFromDifferentScenarios) {
  // Two sweeps whose numeric plans and labels agree but whose family
  // parameters differ: only the scenario block reveals the mismatch.
  const auto shard_doc = [](double degree, const core::SweepShard& shard) {
    core::ScenarioSpec spec;
    spec.family = {"random-regular", {{"degree", degree}}};
    spec.algorithm = "largest-id";
    spec.ns = {12};
    spec.seed = 9;
    spec.schedule.max_trials = 4;
    const core::ResolvedScenario resolved = core::resolve_scenario(spec);
    core::BatchedSweepOptions options = resolved.sweep_options();
    options.threads = 1;
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
    doc.meta.algorithm = resolved.spec.algorithm;
    doc.meta.graph = "random-regular";  // deliberately parameter-free label
    doc.meta.scenario = core::scenario_to_json(resolved.spec);
    doc.shard = shard;
    doc.points = core::run_sweep_shard(resolved.spec.ns, resolved.graphs,
                                       resolved.algorithms, options, shard);
    return core::parse_shard_json(core::shard_to_json(doc));
  };

  std::vector<core::ShardDocument> mixed = {shard_doc(3.0, {0, 1, 0, 2}),
                                            shard_doc(4.0, {0, 1, 2, 4})};
  EXPECT_THROW(core::merge_shards(std::move(mixed)), std::logic_error);

  std::vector<core::ShardDocument> matched = {shard_doc(3.0, {0, 1, 0, 2}),
                                              shard_doc(3.0, {0, 1, 2, 4})};
  EXPECT_EQ(core::merge_shards(std::move(matched)).size(), 1u);
}

}  // namespace
