// Edge-case and failure-injection tests: disconnected graphs, arbitrary
// (non-permutation) identifiers, minimum sizes, and guard paths.
#include <gtest/gtest.h>

#include "algo/cole_vishkin.hpp"
#include "algo/greedy_colouring.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/validity.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(EdgeCases, DisconnectedGraphElectsPerComponentLeaders) {
  // A node genuinely cannot learn about other components in the LOCAL
  // model: its ball covers its component and closure is (correctly)
  // detected there. The semantics of largest-ID on a disconnected graph is
  // therefore per-component leader election - documented here.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);  // triangle {0,1,2}
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);  // triangle {3,4,5}
  const graph::Graph g = b.build();
  const graph::IdAssignment ids({10, 20, 30, 40, 50, 60});
  const auto run = local::run_views(g, ids, algo::make_largest_id_view());
  EXPECT_EQ(run.outputs[2], algo::kYes) << "leader of the first component (id 30)";
  EXPECT_EQ(run.outputs[5], algo::kYes) << "leader of the second component (id 60)";
  EXPECT_EQ(run.outputs[0], algo::kNo);
  EXPECT_EQ(run.outputs[3], algo::kNo);
}

TEST(EdgeCases, ArbitraryDistinctIdentifiers) {
  // Identifiers need not be a permutation of {1..n}: any distinct 64-bit
  // values work (the paper's algorithm never assumes the universe).
  const graph::Graph g = graph::make_cycle(5);
  const graph::IdAssignment ids(
      {0, std::uint64_t{1} << 63, 42, 7'000'000'000'000ULL, 1});
  const auto run = local::run_views(g, ids, algo::make_largest_id_view());
  EXPECT_TRUE(algo::is_valid_largest_id(ids, run.outputs));
  EXPECT_EQ(run.outputs[1], algo::kYes);

  // Greedy colouring and the unknown-n colouring also accept huge ids.
  const auto greedy = local::run_views(g, ids, algo::make_greedy_colouring_view());
  EXPECT_TRUE(algo::is_valid_colouring(g, greedy.outputs, 3));
  local::EngineOptions options;
  options.max_rounds = 10'000;
  const auto local3 = local::run_messages(g, ids, algo::make_local_three_colouring(), options);
  EXPECT_TRUE(algo::is_valid_colouring(g, local3.outputs, 3));
}

TEST(EdgeCases, MinimumRing) {
  const graph::Graph g = graph::make_cycle(3);
  const graph::IdAssignment ids = graph::IdAssignment::identity(3);
  const auto leader = local::run_views(g, ids, algo::make_largest_id_view());
  EXPECT_TRUE(algo::is_valid_largest_id(ids, leader.outputs));
  EXPECT_EQ(leader.max_radius(), 1u);  // ball of radius 1 covers the triangle

  const auto cv = local::run_views(g, ids, algo::make_cole_vishkin_view(3));
  EXPECT_TRUE(algo::is_valid_colouring(g, cv.outputs, 3));

  local::EngineOptions options;
  options.max_rounds = 1'000;
  const auto local3 = local::run_messages(g, ids, algo::make_local_three_colouring(), options);
  EXPECT_TRUE(algo::is_valid_colouring(g, local3.outputs, 3));
}

TEST(EdgeCases, ViewEngineMaxRadiusOptionGuards) {
  const graph::Graph g = graph::make_cycle(64);
  const graph::IdAssignment ids = graph::IdAssignment::identity(64);
  local::ViewEngineOptions options;
  options.max_radius = 2;  // the leader needs 32
  EXPECT_THROW(local::run_views(g, ids, algo::make_largest_id_view(), options),
               std::runtime_error);
}

TEST(EdgeCases, ColeVishkinRequiresRingAndKnowledge) {
  // Running the known-n message algorithm without Knowledge::kKnowsN is an
  // error the algorithm reports, not silent misbehaviour.
  const graph::Graph g = graph::make_cycle(8);
  const graph::IdAssignment ids = graph::IdAssignment::identity(8);
  EXPECT_THROW(local::run_messages(g, ids, algo::make_cole_vishkin_messages()),
               std::logic_error);

  // And the view variant refuses non-ring topologies.
  const graph::Graph star = graph::make_star(8);
  const graph::IdAssignment star_ids = graph::IdAssignment::identity(8);
  EXPECT_THROW(local::run_views(star, star_ids, algo::make_cole_vishkin_view(8)),
               std::logic_error);
}

TEST(EdgeCases, UniverseAwareOnNonPermutationIdsStaysCorrect) {
  // The universe-aware rule assumes ids form a permutation of {1..n'}; with
  // arbitrary ids its "No" shortcut fires more eagerly (view size >= own id),
  // which is *still correct* whenever every id is at most the true maximum:
  // here all ids are huge, the shortcut never fires, and behaviour matches
  // the paper's algorithm.
  const graph::Graph g = graph::make_cycle(6);
  const graph::IdAssignment ids({1000, 2000, 3000, 4000, 5000, 6000});
  const auto aware = local::run_views(g, ids, algo::make_largest_id_universe_aware_view());
  const auto paper = local::run_views(g, ids, algo::make_largest_id_view());
  for (std::size_t v = 0; v < 6; ++v) {
    EXPECT_EQ(aware.outputs[v], paper.outputs[v]);
    EXPECT_EQ(aware.radii[v], paper.radii[v]);
  }
}

}  // namespace
